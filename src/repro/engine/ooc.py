"""Out-of-core panel-sharded A^T A: stream row panels through the engine.

The Gram product is a sum over rows — ``A^T A = Σ_p A_p^T A_p`` for any
row partition of ``A`` — which makes it the textbook out-of-core workload:
stream budget-sized row panels of ``A``, run each panel's Gram update
through the in-memory :class:`~repro.engine.dispatch.ExecutionEngine`
(reusing its plan cache, workspace pool, backend registry/tuner and DAG
workers per panel), and accumulate into one resident ``C``.  The input
never has to fit in memory; only the **working set** does:

    resident = C (n x n) + the loaded panel(s) of A

:class:`ShardedAtA` sizes the panels from a byte budget
(``Config.memory_budget`` / ``REPRO_MEMORY_BUDGET``, or a per-call
``budget=``), raising :class:`~repro.errors.BudgetError` when even one
row's working set cannot fit, and records the peak resident bytes it
actually materialised into the engine's stats.

Determinism contract
--------------------
The panel schedule is a pure function of ``(m, panel_rows)``
(:func:`~repro.engine.plan.split_rows`: ascending, fixed) and panels are
accumulated strictly in that order, so for a **fixed schedule** the result
is bit-identical (``np.array_equal``) across runs, across source kinds
(in-memory array, ``np.memmap``, chunk stream) and with prefetching on or
off — the streaming machinery never touches values.  Two schedules differ
only in how the floating-point row sum is associated:

* **single panel** (the input fits the budget): the one engine call *is*
  ``matmul_ata`` — bit-identical to the in-memory engine by construction;
* **multi panel**: bit-identical to calling ``engine.matmul_ata`` once
  per panel on in-memory row slices in schedule order (the reference the
  test suite checks against every source/prefetch combination).  It is
  *not* bit-identical to a differently-associated sum — one whole-matrix
  kernel call rounds differently — which is the same caveat BLAS itself
  carries for any blocked reduction.

A budget-*derived* schedule charges two panel buffers while prefetching,
so auto-prefetch (which follows the host's core count) can legitimately
pick different panel heights on different hosts.  Pin ``panel_rows`` (or
``prefetch``) when results must reproduce bit for bit *across* machines;
on one host with one configuration the schedule is always fixed.

Sources
-------
Anything exposing ``shape``/``dtype``/``panels(bounds)`` works; three
adapters cover the practical cases (:func:`as_source` picks one):

* :class:`ArraySource` — an in-memory ``ndarray``; panels are views
  (nothing is copied — but the scheduled window is charged against the
  budget all the same, so schedules and results never depend on the
  source kind).
* :class:`MemmapSource` — an ``np.memmap`` (or any array you want staged
  explicitly); each panel is **copied** into RAM so the compute kernels
  never fault pages mid-kernel.
* :class:`ChunkSource` — a forward-only iterator of row chunks with a
  declared ``(shape, dtype)``; chunk boundaries need not match panel
  boundaries (an internal stitch buffer re-slices them), so synthetic
  streams and record readers plug in without ever materialising ``A``.

Prefetch
--------
With ``prefetch`` on, a daemon loader thread stages panel ``k+1`` while
the engine computes panel ``k`` (classic double buffering — the budget
charges two panels).  ``prefetch=None`` ("auto") enables it only when the
host has more than one core: on a 1-core container the loader thread only
adds GIL traffic, so auto mode keeps the single-buffer schedule there.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from .. import faults
from ..cache.model import CacheModel
from ..config import get_config
from ..errors import BudgetError, DTypeError, ShapeError
from .cpu import available_cpus
from .plan import split_rows
from .sparse import HAVE_SCIPY, _sps, is_sparse

__all__ = ["ShardedAtA", "OocRunStats", "ArraySource", "MemmapSource",
           "ChunkSource", "SparseSource", "SparseChunkSource", "as_source",
           "matmul_ata_ooc", "run_ooc"]

Bounds = Tuple[Tuple[int, int], ...]


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

class ArraySource:
    """Panel source over an in-memory ``ndarray`` — panels are row views.

    Nothing is copied: the caller already holds the whole array.  The
    budget and the resident accounting still charge the scheduled panel
    window uniformly across source kinds — that keeps a budget-derived
    schedule (and hence the result, bit for bit) identical whether the
    same matrix arrives as an array, a memmap or a stream.  Use
    :class:`MemmapSource` when the backing store is disk and panels must
    be staged into RAM explicitly.
    """

    def __init__(self, a: np.ndarray) -> None:
        if not isinstance(a, np.ndarray):
            raise DTypeError(
                f"ArraySource expects a numpy.ndarray, got {type(a).__name__}")
        if a.ndim != 2:
            raise ShapeError(f"A must be 2-dimensional, got shape {a.shape}")
        self._a = a
        self.shape = a.shape
        self.dtype = a.dtype

    def panels(self, bounds: Bounds) -> Iterator[np.ndarray]:
        for lo, hi in bounds:
            yield self._a[lo:hi]


class MemmapSource(ArraySource):
    """Panel source that stages each panel into RAM with an explicit copy.

    The natural wrapper for ``np.memmap``: slicing a memmap yields a lazy
    view whose pages fault in *during* the compute kernel, which both
    defeats prefetching and makes the resident set unaccountable.  Copying
    the slice up front turns the load into one sequential read the
    prefetch thread can overlap, and the copy is exactly what the budget
    meters.
    """

    def panels(self, bounds: Bounds) -> Iterator[np.ndarray]:
        for lo, hi in bounds:
            yield np.array(self._a[lo:hi], copy=True)


class ChunkSource:
    """Panel source over a forward-only iterator of row chunks.

    Parameters
    ----------
    chunks:
        Iterable of 2-D arrays, each carrying the next rows of ``A`` in
        order.  Chunk heights are arbitrary — they are stitched and
        re-sliced into the requested panel bounds — but every chunk must
        be ``n`` columns wide and share the declared dtype, and the total
        row count must equal ``shape[0]`` (checked as the stream drains).
    shape, dtype:
        The full logical ``(m, n)`` shape and element dtype, declared up
        front because a stream cannot be asked for them.

    This is the synthetic-stream protocol: generators, record readers or
    network feeds supply Gram updates without ever materialising ``A``.
    A chunk is the *caller's* materialisation: one taller than the panel
    height stays resident (as the stitch buffer's tail) until its rows
    are consumed, so keep chunks at or below the panel height when the
    memory budget matters.
    """

    def __init__(self, chunks: Iterable[np.ndarray],
                 shape: Tuple[int, int], dtype) -> None:
        m, n = shape
        if m < 1 or n < 1:
            raise ShapeError(f"declared shape must be positive, got {shape}")
        self._chunks = iter(chunks)
        self.shape = (int(m), int(n))
        self.dtype = np.dtype(dtype)

    def panels(self, bounds: Bounds) -> Iterator[np.ndarray]:
        m, n = self.shape
        pending: list = []          # buffered rows not yet handed out
        pending_rows = 0
        consumed = 0                # rows already handed out as panels
        exhausted = False
        for lo, hi in bounds:
            if lo != consumed:
                raise ShapeError(
                    f"chunk sources are forward-only: panel [{lo}, {hi}) "
                    f"requested but the stream is at row {consumed}")
            need = hi - lo
            while pending_rows < need and not exhausted:
                try:
                    chunk = next(self._chunks)
                except StopIteration:
                    exhausted = True
                    break
                chunk = np.asarray(chunk)
                if chunk.ndim != 2 or chunk.shape[1] != n:
                    raise ShapeError(
                        f"stream chunk must have shape (rows, {n}), got "
                        f"{chunk.shape}")
                if chunk.dtype != self.dtype:
                    raise DTypeError(
                        f"stream chunk dtype {chunk.dtype} does not match "
                        f"the declared {self.dtype}")
                if chunk.shape[0]:
                    pending.append(chunk)
                    pending_rows += chunk.shape[0]
            if pending_rows < need:
                raise ShapeError(
                    f"stream ended early: declared {m} rows but only "
                    f"{consumed + pending_rows} arrived")
            # take exactly `need` rows, splitting only the boundary chunk
            # (never re-concatenating the whole buffer: copies stay linear
            # in the rows delivered however chunk and panel sizes align)
            take = []
            taken = 0
            while taken < need:
                chunk = pending[0]
                if taken + chunk.shape[0] <= need:
                    take.append(pending.pop(0))
                    taken += chunk.shape[0]
                else:
                    split = need - taken
                    take.append(chunk[:split])
                    pending[0] = chunk[split:]
                    taken = need
            pending_rows -= need
            panel = take[0] if len(take) == 1 else np.concatenate(take)
            consumed += need
            yield panel
        if pending_rows:
            raise ShapeError(
                f"stream carries more rows than the declared {m} "
                f"(at least {consumed + pending_rows})")
        if not exhausted:
            # drain the tail with the same validation as the main loop, so
            # a malformed trailing chunk gets the same ShapeError and
            # empty trailing chunks cannot mask an over-long stream
            for extra in self._chunks:
                extra = np.asarray(extra)
                if extra.ndim != 2 or extra.shape[1] != n:
                    raise ShapeError(
                        f"stream chunk must have shape (rows, {n}), got "
                        f"{extra.shape}")
                if extra.shape[0]:
                    raise ShapeError(
                        f"stream carries more rows than the declared {m}")


class SparseSource:
    """Panel source over a scipy sparse matrix — panels are CSR row slices.

    The matrix is normalised to CSR once (row slicing is a cheap
    ``indptr`` walk there; CSC would pay a full conversion per panel) and
    each scheduled panel is handed to the engine as a sparse matrix, so
    per-panel dispatch — including the tuner-arbitrated sparse-vs-densify
    crossover — applies at panel granularity and the full operand is
    never densified.

    The budget still charges the **dense-equivalent** panel window
    (``rows * n * itemsize``), deliberately: the schedule must be a pure
    function of ``(shape, dtype, budget)`` so results stay bit-identical
    across source kinds, and a dense charge is the safe upper bound for
    whatever a downstream ``densify`` pick materialises per panel.
    """

    def __init__(self, a) -> None:
        if not is_sparse(a):
            raise DTypeError(
                "SparseSource expects a scipy sparse matrix, got "
                f"{type(a).__name__}")
        if len(a.shape) != 2:
            raise ShapeError(f"A must be 2-dimensional, got shape {a.shape}")
        self._a = a.tocsr()
        self.shape = tuple(int(d) for d in a.shape)
        self.dtype = np.dtype(a.dtype)

    @property
    def nnz(self) -> int:
        return int(self._a.nnz)

    def panels(self, bounds: Bounds):
        for lo, hi in bounds:
            yield self._a[lo:hi]


class SparseChunkSource:
    """Forward-only iterator of sparse row chunks, stitched into panels.

    The sparse counterpart of :class:`ChunkSource`: chunks are scipy
    sparse matrices of ``n`` columns arriving in row order with arbitrary
    heights; an internal stitch buffer re-slices them into the scheduled
    panel bounds (splitting only the boundary chunk — CSR row slicing —
    and stacking with ``scipy.sparse.vstack``), with the same
    forward-only, short-stream and over-long-stream validation.  Panels
    come out as CSR, so the whole stream flows through sparse dispatch
    without ever materialising ``A``.
    """

    def __init__(self, chunks, shape: Tuple[int, int], dtype) -> None:
        if not HAVE_SCIPY:
            raise DTypeError(
                "SparseChunkSource requires scipy; stream dense chunks "
                "through ChunkSource instead")
        m, n = shape
        if m < 1 or n < 1:
            raise ShapeError(f"declared shape must be positive, got {shape}")
        self._chunks = iter(chunks)
        self.shape = (int(m), int(n))
        self.dtype = np.dtype(dtype)

    def panels(self, bounds: Bounds):
        m, n = self.shape
        pending: list = []
        pending_rows = 0
        consumed = 0
        exhausted = False
        for lo, hi in bounds:
            if lo != consumed:
                raise ShapeError(
                    f"chunk sources are forward-only: panel [{lo}, {hi}) "
                    f"requested but the stream is at row {consumed}")
            need = hi - lo
            while pending_rows < need and not exhausted:
                try:
                    chunk = next(self._chunks)
                except StopIteration:
                    exhausted = True
                    break
                if not is_sparse(chunk):
                    raise DTypeError(
                        "sparse stream chunk must be a scipy sparse "
                        f"matrix, got {type(chunk).__name__}")
                if len(chunk.shape) != 2 or chunk.shape[1] != n:
                    raise ShapeError(
                        f"stream chunk must have shape (rows, {n}), got "
                        f"{chunk.shape}")
                if np.dtype(chunk.dtype) != self.dtype:
                    raise DTypeError(
                        f"stream chunk dtype {chunk.dtype} does not match "
                        f"the declared {self.dtype}")
                if chunk.shape[0]:
                    pending.append(chunk.tocsr())
                    pending_rows += chunk.shape[0]
            if pending_rows < need:
                raise ShapeError(
                    f"stream ended early: declared {m} rows but only "
                    f"{consumed + pending_rows} arrived")
            take = []
            taken = 0
            while taken < need:
                chunk = pending[0]
                if taken + chunk.shape[0] <= need:
                    take.append(pending.pop(0))
                    taken += chunk.shape[0]
                else:
                    split = need - taken
                    take.append(chunk[:split])
                    pending[0] = chunk[split:]
                    taken = need
            pending_rows -= need
            panel = take[0] if len(take) == 1 else _sps.vstack(take,
                                                               format="csr")
            consumed += need
            yield panel
        if pending_rows:
            raise ShapeError(
                f"stream carries more rows than the declared {m} "
                f"(at least {consumed + pending_rows})")
        if not exhausted:
            for extra in self._chunks:
                if not is_sparse(extra):
                    raise DTypeError(
                        "sparse stream chunk must be a scipy sparse "
                        f"matrix, got {type(extra).__name__}")
                if len(extra.shape) != 2 or extra.shape[1] != n:
                    raise ShapeError(
                        f"stream chunk must have shape (rows, {n}), got "
                        f"{extra.shape}")
                if extra.shape[0]:
                    raise ShapeError(
                        f"stream carries more rows than the declared {m}")


def as_source(a) -> Union[ArraySource, MemmapSource, ChunkSource,
                          "SparseSource"]:
    """Adapt ``a`` into a panel source.

    ``np.memmap`` becomes a staging :class:`MemmapSource`, any other
    ``ndarray`` a view-based :class:`ArraySource`, and a scipy sparse
    matrix a CSR-slicing :class:`SparseSource`; objects already exposing
    the source protocol (``shape``/``dtype``/``panels``) pass through.
    Bare iterators are rejected — wrap them in a :class:`ChunkSource`
    (dense chunks) or :class:`SparseChunkSource` (sparse chunks) with a
    declared shape and dtype.
    """
    if is_sparse(a):
        return SparseSource(a)
    if isinstance(a, np.memmap):
        return MemmapSource(a)
    if isinstance(a, np.ndarray):
        return ArraySource(a)
    if hasattr(a, "shape") and hasattr(a, "dtype") and hasattr(a, "panels"):
        return a
    raise ShapeError(
        f"cannot adapt {type(a).__name__} into a panel source; pass an "
        "ndarray, an np.memmap, a scipy sparse matrix, or a "
        "ChunkSource(chunks, shape, dtype)")


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class OocRunStats:
    """Accounting of one out-of-core run.

    Attributes
    ----------
    panels:
        Panels the schedule streamed (1 = the input fit the budget).
    panel_rows:
        Rows per full panel (the last panel may be ragged).
    bytes_resident_high:
        High-water mark of the executor's working set: ``C`` plus the
        scheduled panel window(s) — two panels while the prefetch thread
        double-buffers.  Charged uniformly across source kinds (a view
        source borrows its window from the caller's array instead of
        copying it), so this always agrees with the budget admission
        check and never exceeds ``budget_bytes`` when one is set.
    budget_bytes:
        The budget the schedule was sized against (0 = unbounded).
    prefetched:
        Whether the double-buffered loader thread was active.
    prefetch_degraded:
        Whether a loader failure mid-run degraded the stream to
        synchronous staging of the remaining panels (prefetching is an
        optimisation, never a correctness dependency — a degraded run
        delivers the same panels in the same order, hence the same
        bits).
    workspace_bytes:
        The engine workspace pool's footprint (idle + checked-out
        scratch) when the run finished.  Pooled scratch is the one
        engine-side allocation that outlives a panel, so it is the part
        of the working set the resident accounting above cannot see.
    workspace_trimmed:
        Idle pooled workspaces dropped before the run so that pooled
        scratch plus the panel-resident set fit ``budget_bytes``
        together (0 when unbounded or nothing needed dropping).
        Trimming only ever frees memory — it never alters the panel
        schedule, so the determinism contract is untouched.
    """

    panels: int
    panel_rows: int
    bytes_resident_high: int
    budget_bytes: int
    prefetched: bool
    prefetch_degraded: bool = False
    workspace_bytes: int = 0
    workspace_trimmed: int = 0


class ShardedAtA:
    """Panel-sharded out-of-core executor for ``C = alpha*A^T A + beta*C``.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.dispatch.ExecutionEngine` every panel
        executes through (default: the process-wide engine).  Panels of
        equal height resolve to one cached plan and share pooled
        workspaces, so the whole stream pays one compile — the engine's
        amortisation machinery is reused per panel, not reinvented.
    budget:
        Working-set budget in bytes (``None`` reads
        ``Config.memory_budget``; 0 = unbounded).
    panel_rows:
        Explicit panel height, overriding the budget-derived one.  The
        budget still *validates* it: an explicit panel that cannot fit
        raises :class:`BudgetError`.
    prefetch:
        ``True``/``False`` force double-buffered prefetching on or off;
        ``None`` ("auto", default) enables it only on multi-core hosts —
        a 1-core container gains nothing from a loader thread.
    """

    def __init__(self, engine=None, *, budget: Optional[int] = None,
                 panel_rows: Optional[int] = None,
                 prefetch: Optional[bool] = None) -> None:
        if engine is None:
            from .dispatch import default_engine
            engine = default_engine()
        if panel_rows is not None and panel_rows < 1:
            raise ShapeError(f"panel_rows must be >= 1, got {panel_rows}")
        if budget is not None and budget < 0:
            raise BudgetError(f"budget must be >= 0 bytes, got {budget}")
        self.engine = engine
        self.budget = budget
        self.panel_rows = panel_rows
        self.prefetch = prefetch

    # -- schedule -----------------------------------------------------------
    def _resolve_budget(self, budget: Optional[int]) -> int:
        if budget is None:
            budget = self.budget
        if budget is None:
            budget = get_config().memory_budget
        if budget < 0:
            raise BudgetError(f"budget must be >= 0 bytes, got {budget}")
        return int(budget)

    def _resolve_prefetch(self, prefetch: Optional[bool]) -> bool:
        if prefetch is None:
            prefetch = self.prefetch
        if prefetch is None:
            # the affinity-aware count: a process pinned to one core gains
            # nothing from a loader thread even on a many-core machine
            return available_cpus() > 1
        return bool(prefetch)

    def schedule(self, shape: Tuple[int, int], dtype,
                 budget: Optional[int] = None,
                 panel_rows: Optional[int] = None,
                 prefetch: Optional[bool] = None) -> Tuple[Bounds, int, bool]:
        """Resolve ``(panel bounds, effective budget, prefetch)`` for a run.

        The resident set of one panel iteration is ``C`` (``n*n``
        elements) plus ``buffers`` panels of ``rows*n`` elements, where
        ``buffers`` is 2 while prefetching (double buffer) and 1
        otherwise.  A finite budget sizes ``rows`` as large as fits;
        :class:`BudgetError` names the shortfall when not even one row
        fits (or when an explicit ``panel_rows`` overshoots).
        """
        m, n = shape
        if m < 1 or n < 1:
            raise ShapeError(f"A must have positive dimensions, got {shape}")
        itemsize = np.dtype(dtype).itemsize
        budget = self._resolve_budget(budget)
        use_prefetch = self._resolve_prefetch(prefetch)
        if panel_rows is None:
            panel_rows = self.panel_rows
        c_bytes = n * n * itemsize
        row_bytes = n * itemsize
        buffers = 2 if use_prefetch else 1
        if budget:
            headroom = budget - c_bytes
            fit = headroom // (buffers * row_bytes) if headroom > 0 else 0
            if panel_rows is None:
                panel_rows = int(min(m, fit))
            else:
                panel_rows = min(panel_rows, m)
            if panel_rows < 1 or panel_rows > fit:
                rows = max(panel_rows, 1)
                raise BudgetError(
                    f"memory budget of {budget} bytes cannot hold the "
                    f"{n}x{n} output ({c_bytes} bytes) plus {buffers} "
                    f"panel buffer(s) of {rows} x {n} rows "
                    f"({buffers * rows * row_bytes} bytes); the smallest "
                    "feasible working set is "
                    f"{c_bytes + buffers * row_bytes} bytes — raise "
                    "REPRO_MEMORY_BUDGET / Config.memory_budget or shrink "
                    "the panel")
        elif panel_rows is None:
            panel_rows = m
        panel_rows = min(panel_rows, m)
        bounds = split_rows(m, panel_rows)
        if len(bounds) == 1:
            use_prefetch = False  # nothing to overlap with a lone panel
        return bounds, budget, use_prefetch

    # -- streaming ----------------------------------------------------------
    @staticmethod
    def _faulted_panels(panels: Iterator[np.ndarray]) -> Iterator[np.ndarray]:
        """Wrap a panel iterator with the ``ooc.stream`` fault site.

        Only interposed when a fault spec is armed — the production
        stream never pays the per-panel site evaluation.  ``truncate``
        ends the stream early; the executor's panel count check turns
        that into the same :class:`ShapeError` a genuinely short custom
        source would earn.
        """
        for index, panel in enumerate(panels):
            if faults.maybe("ooc.stream", index=index) == "truncate":
                return
            yield panel

    @staticmethod
    def _stream(source, bounds: Bounds, prefetch: bool,
                state: Optional[dict] = None) -> Iterator[np.ndarray]:
        """Yield the scheduled panels, optionally staged one ahead by a
        loader thread.

        The prefetch path is a strict double buffer: a two-permit
        semaphore meters *materialisation* — the loader acquires a permit
        **before** pulling the next panel out of the source, and the
        consumer side returns the permit only after the engine has
        finished with a panel and every reference to it is dropped — so at
        most two panels exist at any instant, which is exactly what the
        schedule's ``buffers = 2`` budget charge pays for.  (Blocking the
        queue alone would not bound this: a loader that has already
        handed off panel ``k+1`` would happily materialise ``k+2`` while
        waiting for queue space.)

        Prefetching is an optimisation, never a correctness dependency: a
        loader-machinery failure (the ``ooc.prefetch`` fault site stands
        in for one) degrades the stream to synchronous staging of the
        remaining panels — same panels, same order, same bits — and is
        reported through ``state["prefetch_degraded"]`` rather than
        failing the run.  Failures raised by the *source* itself (bad
        chunk shapes, a short stream) still propagate: those are data
        errors, not machinery errors.
        """
        panels = source.panels(bounds)
        if faults.armed():
            panels = ShardedAtA._faulted_panels(panels)
        if not prefetch:
            yield from panels
            return
        handoff: "queue.Queue" = queue.Queue(maxsize=1)
        stop = threading.Event()
        slots = threading.Semaphore(2)  # panels materialised at once
        done = object()
        degrade = object()

        def put(item) -> bool:
            while not stop.is_set():
                try:
                    handoff.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def load() -> None:
            item = done
            try:
                index = 0
                while True:
                    while not slots.acquire(timeout=0.1):
                        if stop.is_set():
                            return
                    try:
                        faults.maybe("ooc.prefetch", index=index)
                    except Exception:
                        slots.release()
                        item = degrade
                        break
                    try:
                        panel = next(panels)
                    except StopIteration:
                        break
                    index += 1
                    if not put(panel):
                        return
                    panel = None  # the queue's reference is the staged one
            except BaseException as exc:  # surfaced on the consumer side
                item = exc
            put(item)

        loader = threading.Thread(target=load, name="repro-ooc-prefetch",
                                  daemon=True)
        loader.start()
        try:
            while True:
                item = handoff.get()
                if item is done:
                    break
                if item is degrade:
                    # the loader is done with the panel iterator (the
                    # marker is the last thing it sends); finish staging
                    # synchronously from where it stopped
                    loader.join(timeout=2.0)
                    if state is not None:
                        state["prefetch_degraded"] = True
                    yield from panels
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
                item = None   # drop before freeing the slot: the permit
                slots.release()  # must outlive every reference
        finally:
            stop.set()
            # bounded: the loader exits via its stop checks within ~0.1s
            # unless it is stuck inside a blocking source iterator — it is
            # a daemon thread, so a stalled feed cannot hang the process
            loader.join(timeout=2.0)

    # -- execution ----------------------------------------------------------
    def run(self, a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
            beta: float = 1.0, algo: str = "auto",
            cache: Optional[CacheModel] = None, parallel: Optional[str] = None,
            budget: Optional[int] = None, panel_rows: Optional[int] = None,
            prefetch: Optional[bool] = None
            ) -> Tuple[np.ndarray, OocRunStats]:
        """Stream ``a`` through the engine; returns ``(C, run stats)``.

        ``a`` is anything :func:`as_source` accepts.  ``algo`` / ``cache``
        / ``parallel`` pass through to every per-panel
        :meth:`~repro.engine.dispatch.ExecutionEngine.matmul_ata` call,
        so backend selection (including a measured tuner) applies at
        panel granularity.  With a single-panel schedule the one engine
        call is exactly ``matmul_ata(a, c, alpha, beta=beta, ...)``.
        """
        source = as_source(a)
        m, n = source.shape
        bounds, eff_budget, use_prefetch = self.schedule(
            (m, n), source.dtype, budget, panel_rows, prefetch)
        itemsize = np.dtype(source.dtype).itemsize
        if c is None:
            c = np.zeros((n, n), dtype=source.dtype)
        else:
            if c.shape != (n, n):
                raise ShapeError(f"C must have shape ({n}, {n}) for A of "
                                 f"shape ({m}, {n}), got {c.shape}")
            if c.dtype != np.dtype(source.dtype):
                raise ShapeError("A and C must share a dtype, got "
                                 f"{np.dtype(source.dtype)} and {c.dtype}")

        from ..blas.kernels import scale
        scale(c, beta)  # panels accumulate with beta=1 after one pre-scale
        widest = max(hi - lo for lo, hi in bounds)
        # the scheduled panel window is charged uniformly across source
        # kinds (for a view source it is borrowed rather than copied):
        # admission and accounting always agree, and a budget-derived
        # schedule — hence the result, bit for bit — is the same whether
        # the matrix arrives as an array, a memmap or a stream
        if use_prefetch and len(bounds) > 1:
            # double buffer: panel k resident while k+1 is staged
            staged_rows = max((bounds[i][1] - bounds[i][0])
                              + (bounds[i + 1][1] - bounds[i + 1][0])
                              for i in range(len(bounds) - 1))
        else:
            staged_rows = widest
        resident_high = (n * n + staged_rows * n) * itemsize
        # budget coordination with the engine's workspace pool: idle
        # pooled scratch left over from earlier (possibly larger) traffic
        # counts against the same budget as the panel-resident set, so
        # shed it down to the headroom the schedule leaves.  This frees
        # memory only — the schedule above is already fixed, so results
        # are unaffected; per-panel plans re-acquire scratch as needed.
        pool = getattr(self.engine, "pool", None)
        trimmed = 0
        if pool is not None and eff_budget:
            trimmed = pool.trim(max(0, eff_budget - resident_high))
        stream_state = {"prefetch_degraded": False}
        consumed = 0
        for panel in self._stream(source, bounds, use_prefetch, stream_state):
            self.engine.matmul_ata(panel, c, alpha, algo=algo, cache=cache,
                                   parallel=parallel)
            # drop the reference before asking for the next panel: the
            # prefetch stream recycles this panel's buffer slot only once
            # nothing points at it, keeping the double buffer double
            panel = None
            consumed += 1
        if consumed != len(bounds):
            # a custom source whose panels() stops short would otherwise
            # return a silently partial Gram — fail loudly instead
            raise ShapeError(
                f"panel stream ended after {consumed} of {len(bounds)} "
                "scheduled panels; the source delivered fewer panels "
                "than its declared shape promised")
        stats = OocRunStats(panels=len(bounds),
                            panel_rows=widest,
                            bytes_resident_high=resident_high,
                            budget_bytes=eff_budget,
                            prefetched=use_prefetch,
                            prefetch_degraded=stream_state["prefetch_degraded"],
                            workspace_bytes=(pool.footprint()
                                             if pool is not None else 0),
                            workspace_trimmed=trimmed)
        record = getattr(self.engine, "_record_ooc", None)
        if record is not None:
            record(stats)
        return c, stats


# ---------------------------------------------------------------------------
# module-level conveniences (default engine)
# ---------------------------------------------------------------------------

def run_ooc(a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
            beta: float = 1.0, algo: str = "auto",
            cache: Optional[CacheModel] = None, parallel: Optional[str] = None,
            budget: Optional[int] = None, panel_rows: Optional[int] = None,
            prefetch: Optional[bool] = None, procs: Optional[int] = None):
    """Out-of-core ``C = alpha * A^T A + beta * C`` on the default engine,
    returning ``(C, run stats)``; see :class:`ShardedAtA`.  ``procs=0``
    (the default via ``Config.farm_procs``) runs in-process; ``procs>=1``
    fans panels out to worker processes
    (:class:`repro.engine.farm.PanelFarm`)."""
    from .dispatch import default_engine
    return default_engine().run_ooc(
        a, c, alpha, beta=beta, algo=algo, cache=cache, parallel=parallel,
        budget=budget, panel_rows=panel_rows, prefetch=prefetch, procs=procs)


def matmul_ata_ooc(a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
                   beta: float = 1.0, algo: str = "auto",
                   cache: Optional[CacheModel] = None,
                   parallel: Optional[str] = None,
                   budget: Optional[int] = None,
                   panel_rows: Optional[int] = None,
                   prefetch: Optional[bool] = None,
                   procs: Optional[int] = None) -> np.ndarray:
    """Out-of-core counterpart of :func:`repro.engine.matmul_ata`: accepts
    arrays, memmaps or chunk streams and returns ``C`` (drop the stats);
    see :class:`ShardedAtA` for the budget and determinism contract and
    :class:`repro.engine.farm.PanelFarm` for ``procs``."""
    result, _ = run_ooc(a, c, alpha, beta=beta, algo=algo, cache=cache,
                        parallel=parallel, budget=budget,
                        panel_rows=panel_rows, prefetch=prefetch, procs=procs)
    return result
