"""Multi-process panel farm: fan out-of-core Gram panels to worker
processes over shared memory.

:class:`~repro.engine.ooc.ShardedAtA` streams row panels through the
engine *in-process*: one Python interpreter, one GIL, one core.  The
farm keeps its schedule and budget discipline but moves the per-panel
Gram updates into a pool of worker **processes**, each running the full
engine stack (plan cache, workspace pool, backend registry, optional
measured tuner) on its own interpreter:

* panels are staged into per-worker ``multiprocessing.shared_memory``
  arenas — the worker's kernels read the panel straight out of shared
  memory; no pickling, no pipe copies of matrix data;
* each worker computes a **partial Gram** ``alpha * A_p^T A_p`` into its
  own shared ``n x n`` output arena (a zeroed accumulator per panel);
* the parent folds the partials into the resident ``C`` through a
  deterministic fixed reduction tree.

Determinism contract
--------------------
The reduction tree is keyed only by the panel index: partials are folded
in **ascending panel order** (``C += P_0``, then ``P_1``, …), whatever
order workers finish in and however many workers there are.  A partial's
bits depend only on the panel values and the engine configuration —
never on which worker computed it — so for a fixed panel schedule the
result is bit-identical (``np.array_equal``) across worker counts and
across source kinds.

Relative to the in-process executor the farm *re-associates* the
floating-point sum: :class:`ShardedAtA` accumulates each panel into the
live ``C`` inside the kernel, the farm adds a kernel-on-zeros partial
afterwards.  For the single-kernel backends (``syrk``, ``tiled``,
``recursive_gemm``, ``blas_direct`` — and every backend when the panel
fits the configured base case) the two chains are identical bit for bit,
because those kernels update each ``C`` element exactly once:
``kernel(c) == c + kernel(0)`` exactly.  The recursive ``ata`` backend
above its base case updates elements more than once, so there — as with
any re-blocked BLAS reduction — the farm agrees with the in-process
result only to rounding.  The test suite pins both statements.

Note the *schedule* itself must be fixed for cross-worker-count
bit-identity: a budget-derived schedule charges ``procs`` input arenas
and ``procs`` output arenas, so changing ``procs`` under a finite budget
legitimately changes the panel height.  Pin ``panel_rows`` when results
must reproduce across worker counts.

Memory budget
-------------
The working set charged against ``Config.memory_budget`` is::

    resident = (1 + procs) * n*n*itemsize   (C + one output arena/worker)
             + procs * panel_rows * n*itemsize  (one input arena/worker)

:class:`~repro.errors.BudgetError` names the smallest feasible working
set when not even one-row panels fit.  At most ``procs`` panels are ever
staged and un-folded at one instant — an out-of-order finisher idles
until the fold reaches its panel — so the accounting above is a true
high-water bound, not an estimate.

Failure handling
----------------
A worker that dies (``os._exit``, a kill, a segfaulting extension)
or raises is surfaced as :class:`~repro.errors.FarmError` carrying the
worker name and, for raised errors, the original traceback — the parent
polls worker liveness while waiting on results, so a dead pool can never
hang the run.  Workers are always terminated and the arenas always
unlinked, success or failure.

Workers are forked where the platform supports it (runtime-registered
backends and the live configuration carry over for free); elsewhere the
pool falls back to the default start method and workers rebuild their
state from the pickled :class:`~repro.config.Config` snapshot — custom
backends registered at runtime do not survive that fallback.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_mod
import traceback
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from ..config import Config, get_config, set_config
from ..errors import BudgetError, FarmError, ShapeError
from .cpu import available_cpus
from .ooc import as_source
from .plan import split_rows

__all__ = ["PanelFarm", "FarmRunStats", "run_farm"]

#: seconds between liveness checks while waiting on worker results
_POLL_SECONDS = 0.2


def _farm_context():
    """The multiprocessing context workers start under: ``fork`` where
    available (state — registered backends, the active config — carries
    over for free), the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing arena without adopting ownership.

    ``SharedMemory(name=...)`` registers the segment with the
    ``resource_tracker`` even on a plain attach (bpo-39959): a spawned
    child's own tracker would unlink the arena when the child exits —
    yanking it out from under the parent and every sibling — and a
    forked child shares the parent's tracker, where a compensating
    ``unregister`` would clobber the parent's legitimate registration.
    The parent owns the arenas and unlinks them exactly once, so the
    child must not track at all: registration is suppressed for the
    duration of the attach (Python 3.13's ``track=False``, back-ported).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_main(worker_id: int, spec: dict, tasks, results) -> None:
    """Worker process body: attach arenas, build an engine, serve tasks.

    Each ``("task", panel_idx, rows)`` message means "the first ``rows``
    rows of my input arena hold panel ``panel_idx``": the worker zeroes
    its output arena, runs one ``matmul_ata`` on the shared panel view,
    and acks ``("done", worker_id, panel_idx)``.  Any exception is
    reported as ``("error", worker_id, traceback)`` and ends the worker.
    """
    in_shm = out_shm = None
    try:
        set_config(spec["config"])
        in_shm = _attach(spec["in_name"])
        out_shm = _attach(spec["out_name"])
        n = spec["n"]
        dtype = np.dtype(spec["dtype"])
        out = np.ndarray((n, n), dtype=dtype, buffer=out_shm.buf)
        from .dispatch import ExecutionEngine
        engine = ExecutionEngine(**spec["engine"])
        try:
            while True:
                message = tasks.get()
                if message[0] == "stop":
                    break
                _, panel_idx, rows = message
                panel = np.ndarray((rows, n), dtype=dtype, buffer=in_shm.buf)
                out.fill(0)
                engine.matmul_ata(panel, out, spec["alpha"],
                                  algo=spec["algo"], cache=spec["cache"],
                                  parallel=spec["parallel"])
                results.put(("done", worker_id, panel_idx))
        finally:
            engine.close()
    except Exception:
        results.put(("error", worker_id, traceback.format_exc()))
    finally:
        for shm in (in_shm, out_shm):
            if shm is not None:
                try:
                    shm.close()
                except Exception:
                    pass


@dataclasses.dataclass(frozen=True)
class FarmRunStats:
    """Accounting of one multi-process farm run.

    Attributes
    ----------
    panels:
        Panels the schedule fanned out.
    panel_rows:
        Rows per full panel (the last panel may be ragged).
    procs:
        Worker processes the run actually used (never more than there
        are panels).
    bytes_resident_high:
        High-water mark of the farm's working set: ``C`` plus one
        ``n x n`` output arena and one panel-sized input arena per
        worker.  Never exceeds ``budget_bytes`` when one is set.
    budget_bytes:
        The budget the schedule was sized against (0 = unbounded).
    """

    panels: int
    panel_rows: int
    procs: int
    bytes_resident_high: int
    budget_bytes: int


class PanelFarm:
    """Multi-process out-of-core executor for ``C = alpha*A^T A + beta*C``.

    Parameters
    ----------
    engine:
        The parent-side :class:`~repro.engine.dispatch.ExecutionEngine`
        (default: the process-wide engine).  The parent never runs panel
        kernels itself — it schedules, stages and folds — but the farm
        mirrors this engine's worker/parallel/tuner configuration into
        every worker process and records its run statistics here.
    procs:
        Worker process count (``None`` resolves to
        :func:`~repro.engine.cpu.available_cpus`; must be >= 1 — for the
        in-process path use :class:`~repro.engine.ooc.ShardedAtA`, or
        ``procs=0`` on :meth:`ExecutionEngine.run_ooc`).
    budget:
        Working-set budget in bytes (``None`` reads
        ``Config.memory_budget``; 0 = unbounded).  See the module
        docstring for what a farm's working set charges.
    panel_rows:
        Explicit panel height, overriding the budget-derived one.  The
        budget still validates it.
    """

    def __init__(self, engine=None, *, procs: Optional[int] = None,
                 budget: Optional[int] = None,
                 panel_rows: Optional[int] = None) -> None:
        if engine is None:
            from .dispatch import default_engine
            engine = default_engine()
        if procs is None:
            procs = available_cpus()
        if procs < 1:
            raise ShapeError(f"procs must be >= 1, got {procs}")
        if panel_rows is not None and panel_rows < 1:
            raise ShapeError(f"panel_rows must be >= 1, got {panel_rows}")
        if budget is not None and budget < 0:
            raise BudgetError(f"budget must be >= 0 bytes, got {budget}")
        self.engine = engine
        self.procs = int(procs)
        self.budget = budget
        self.panel_rows = panel_rows

    # -- schedule -----------------------------------------------------------
    def schedule(self, shape: Tuple[int, int], dtype,
                 budget: Optional[int] = None,
                 panel_rows: Optional[int] = None,
                 procs: Optional[int] = None):
        """Resolve ``(panel bounds, effective budget, procs)`` for a run.

        The farm's resident set is ``C`` plus, per worker, one ``n x n``
        output arena and one panel-sized input arena (module docstring).
        A finite budget sizes the panel as large as fits;
        :class:`BudgetError` names the smallest feasible working set when
        even one-row panels overflow.  ``procs`` is clamped to the panel
        count — idle workers would only cost arenas.
        """
        m, n = shape
        if m < 1 or n < 1:
            raise ShapeError(f"A must have positive dimensions, got {shape}")
        if procs is None:
            procs = self.procs
        procs = int(procs)
        if procs < 1:
            raise ShapeError(f"procs must be >= 1, got {procs}")
        if budget is None:
            budget = self.budget
        if budget is None:
            budget = get_config().memory_budget
        budget = int(budget)
        if budget < 0:
            raise BudgetError(f"budget must be >= 0 bytes, got {budget}")
        if panel_rows is None:
            panel_rows = self.panel_rows
        itemsize = np.dtype(dtype).itemsize
        c_bytes = n * n * itemsize
        row_bytes = n * itemsize
        if budget:
            headroom = budget - (1 + procs) * c_bytes
            fit = headroom // (procs * row_bytes) if headroom > 0 else 0
            if panel_rows is None:
                panel_rows = int(min(m, fit))
            else:
                panel_rows = min(panel_rows, m)
            if panel_rows < 1 or panel_rows > fit:
                rows = max(panel_rows, 1)
                raise BudgetError(
                    f"memory budget of {budget} bytes cannot hold the "
                    f"{n}x{n} output plus {procs} worker output arena(s) "
                    f"({(1 + procs) * c_bytes} bytes) plus {procs} input "
                    f"arena(s) of {rows} x {n} rows "
                    f"({procs * rows * row_bytes} bytes); the smallest "
                    f"feasible working set for procs={procs} is "
                    f"{(1 + procs) * c_bytes + procs * row_bytes} bytes — "
                    "raise REPRO_MEMORY_BUDGET / Config.memory_budget, "
                    "shrink the panel, or use fewer workers")
        elif panel_rows is None:
            panel_rows = m
        panel_rows = min(panel_rows, m)
        bounds = split_rows(m, panel_rows)
        return bounds, budget, min(procs, len(bounds))

    def _worker_engine_spec(self) -> dict:
        """Constructor kwargs mirroring the parent engine into a worker."""
        engine = self.engine
        spec = {"workers": engine.workers, "parallel": engine.parallel}
        if engine.tuner is not None:
            # each worker gets its own tuner on the shared table path;
            # merge-on-save (repro.engine.tuner) makes that safe — the
            # processes union their samples instead of clobbering
            spec["tuner"] = "measured"
        return spec

    # -- execution ----------------------------------------------------------
    def run(self, a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
            beta: float = 1.0, algo: str = "auto",
            cache=None, parallel: Optional[str] = None,
            budget: Optional[int] = None, panel_rows: Optional[int] = None,
            procs: Optional[int] = None
            ) -> Tuple[np.ndarray, FarmRunStats]:
        """Fan ``a``'s panels out to the worker pool; returns ``(C, stats)``.

        ``a`` is anything :func:`~repro.engine.ooc.as_source` accepts.
        ``algo`` / ``cache`` / ``parallel`` apply to every worker's
        per-panel ``matmul_ata`` call, exactly as the in-process executor
        passes them through.
        """
        source = as_source(a)
        m, n = source.shape
        bounds, eff_budget, procs = self.schedule(
            (m, n), source.dtype, budget, panel_rows, procs)
        dtype = np.dtype(source.dtype)
        if c is None:
            c = np.zeros((n, n), dtype=dtype)
        else:
            if c.shape != (n, n):
                raise ShapeError(f"C must have shape ({n}, {n}) for A of "
                                 f"shape ({m}, {n}), got {c.shape}")
            if c.dtype != dtype:
                raise ShapeError(f"A and C must share a dtype, got "
                                 f"{dtype} and {c.dtype}")

        from ..blas.kernels import scale
        scale(c, beta)  # partials fold with += after one pre-scale
        widest = max(hi - lo for lo, hi in bounds)
        resident_high = ((1 + procs) * n * n
                         + procs * widest * n) * dtype.itemsize
        self._fan_out(source, bounds, c, alpha, procs, widest,
                      algo=algo, cache=cache, parallel=parallel)
        stats = FarmRunStats(panels=len(bounds), panel_rows=widest,
                             procs=procs,
                             bytes_resident_high=resident_high,
                             budget_bytes=eff_budget)
        record = getattr(self.engine, "_record_farm", None)
        if record is not None:
            record(stats)
        return c, stats

    def _fan_out(self, source, bounds, c: np.ndarray, alpha: float,
                 procs: int, widest: int, *, algo, cache, parallel) -> None:
        """Stage panels into worker arenas and fold partials into ``c``.

        Panels are staged in ascending order (a forward-only
        :class:`ChunkSource` never rewinds) and folded in ascending
        order (the fixed reduction tree).  A worker's arenas are reused
        only after its previous partial is folded, so at most ``procs``
        panels are in flight — exactly what the budget charged.
        """
        n = c.shape[1]
        dtype = c.dtype
        context = _farm_context()
        results = context.Queue()
        workers = []    # (process, task queue, input arena, output arena)
        out_views = []  # numpy views over the output arenas, index-aligned
        config = get_config()
        if isinstance(config, Config):  # defensive: always true today
            config = config.replace()
        try:
            for worker_id in range(procs):
                in_shm = shared_memory.SharedMemory(
                    create=True, size=max(1, widest * n * dtype.itemsize))
                out_shm = shared_memory.SharedMemory(
                    create=True, size=max(1, n * n * dtype.itemsize))
                tasks = context.Queue()
                spec = {
                    "in_name": in_shm.name, "out_name": out_shm.name,
                    "n": n, "dtype": dtype.str, "alpha": alpha,
                    "algo": algo, "cache": cache, "parallel": parallel,
                    "config": config,
                    "engine": self._worker_engine_spec(),
                }
                process = context.Process(
                    target=_worker_main, name=f"repro-farm-{worker_id}",
                    args=(worker_id, spec, tasks, results), daemon=True)
                process.start()
                workers.append((process, tasks, in_shm, out_shm))
                out_views.append(
                    np.ndarray((n, n), dtype=dtype, buffer=out_shm.buf))

            panels = source.panels(bounds)

            def stage(panel_idx: int, worker_id: int) -> None:
                lo, hi = bounds[panel_idx]
                rows = hi - lo
                panel = next(panels)
                if panel.shape != (rows, n):
                    raise ShapeError(
                        f"source yielded a panel of shape {panel.shape}, "
                        f"expected ({rows}, {n})")
                _, tasks, in_shm, _ = workers[worker_id]
                arena = np.ndarray((rows, n), dtype=dtype, buffer=in_shm.buf)
                try:
                    np.copyto(arena, panel)
                finally:
                    del arena  # release the buffer export before close()
                tasks.put(("task", panel_idx, rows))

            next_stage = 0
            while next_stage < min(procs, len(bounds)):
                stage(next_stage, next_stage)
                next_stage += 1

            next_fold = 0
            ready = {}  # finished panel index -> worker id holding it
            while next_fold < len(bounds):
                try:
                    message = results.get(timeout=_POLL_SECONDS)
                except queue_mod.Empty:
                    for process, _, _, _ in workers:
                        if not process.is_alive():
                            raise FarmError(
                                f"farm worker {process.name!r} died "
                                f"(exit code {process.exitcode}) before "
                                "returning its partial; the run cannot "
                                "complete") from None
                    continue
                if message[0] == "error":
                    _, worker_id, trace = message
                    name = workers[worker_id][0].name
                    raise FarmError(
                        f"farm worker {name!r} failed while computing a "
                        f"panel:\n{trace}")
                _, worker_id, panel_idx = message
                ready[panel_idx] = worker_id
                while next_fold in ready:
                    freed = ready.pop(next_fold)
                    # the fixed reduction tree: partials join C strictly
                    # in ascending panel order, whatever order they
                    # arrived in — worker count can never change the bits
                    np.add(c, out_views[freed], out=c)
                    next_fold += 1
                    if next_stage < len(bounds):
                        stage(next_stage, freed)
                        next_stage += 1
        finally:
            out_views.clear()  # release buffer exports before close()
            for process, tasks, _, _ in workers:
                try:
                    tasks.put(("stop",))
                except Exception:
                    pass
            for process, tasks, in_shm, out_shm in workers:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                tasks.close()
                for shm in (in_shm, out_shm):
                    try:
                        shm.close()
                        shm.unlink()
                    except Exception:
                        pass
            results.close()


# ---------------------------------------------------------------------------
# module-level convenience (default engine)
# ---------------------------------------------------------------------------

def run_farm(a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
             beta: float = 1.0, algo: str = "auto", cache=None,
             parallel: Optional[str] = None, budget: Optional[int] = None,
             panel_rows: Optional[int] = None,
             procs: Optional[int] = None) -> Tuple[np.ndarray, FarmRunStats]:
    """Multi-process out-of-core ``C = alpha * A^T A + beta * C`` on the
    default engine, returning ``(C, FarmRunStats)``; see :class:`PanelFarm`."""
    from .dispatch import default_engine
    return PanelFarm(default_engine(), procs=procs).run(
        a, c, alpha, beta=beta, algo=algo, cache=cache, parallel=parallel,
        budget=budget, panel_rows=panel_rows)
