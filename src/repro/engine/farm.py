"""Multi-process panel farm: fan out-of-core Gram panels to worker
processes over shared memory, healing worker loss in flight.

:class:`~repro.engine.ooc.ShardedAtA` streams row panels through the
engine *in-process*: one Python interpreter, one GIL, one core.  The
farm keeps its schedule and budget discipline but moves the per-panel
Gram updates into a pool of worker **processes**, each running the full
engine stack (plan cache, workspace pool, backend registry, optional
measured tuner) on its own interpreter:

* panels are staged into per-worker ``multiprocessing.shared_memory``
  arenas — the worker's kernels read the panel straight out of shared
  memory; no pickling, no pipe copies of matrix data;
* each worker computes a **partial Gram** ``alpha * A_p^T A_p`` into its
  own shared ``n x n`` output arena (a zeroed accumulator per panel);
* the parent folds the partials into the resident ``C`` through a
  deterministic fixed reduction tree.

Determinism contract
--------------------
The reduction tree is keyed only by the panel index: partials are folded
in **ascending panel order** (``C += P_0``, then ``P_1``, …), whatever
order workers finish in and however many workers there are.  A partial's
bits depend only on the panel values and the engine configuration —
never on which worker computed it — so for a fixed panel schedule the
result is bit-identical (``np.array_equal``) across worker counts and
across source kinds.  The same property is what makes **recovery cheap
to make correct**: a panel lost to a dead worker is replayed on a fresh
worker (or in-process) and contributes exactly the bits it would have
contributed, so a healed run equals the fault-free run bit for bit.

Relative to the in-process executor the farm *re-associates* the
floating-point sum: :class:`ShardedAtA` accumulates each panel into the
live ``C`` inside the kernel, the farm adds a kernel-on-zeros partial
afterwards.  For the single-kernel backends (``syrk``, ``tiled``,
``recursive_gemm``, ``blas_direct`` — and every backend when the panel
fits the configured base case) the two chains are identical bit for bit,
because those kernels update each ``C`` element exactly once:
``kernel(c) == c + kernel(0)`` exactly.  The recursive ``ata`` backend
above its base case updates elements more than once, so there — as with
any re-blocked BLAS reduction — the farm agrees with the in-process
result only to rounding.  The test suite pins both statements.

Note the *schedule* itself must be fixed for cross-worker-count
bit-identity: a budget-derived schedule charges ``procs`` input arenas
and ``procs`` output arenas, so changing ``procs`` under a finite budget
legitimately changes the panel height.  Pin ``panel_rows`` when results
must reproduce across worker counts.

Memory budget
-------------
The working set charged against ``Config.memory_budget`` is::

    resident = (1 + procs) * n*n*itemsize   (C + one output arena/worker)
             + procs * panel_rows * n*itemsize  (one input arena/worker)

:class:`~repro.errors.BudgetError` names the smallest feasible working
set when not even one-row panels fit.  At most ``procs`` panels are ever
staged and un-folded at one instant — an out-of-order finisher idles
until the fold reaches its panel — so the accounting above is a true
high-water bound, not an estimate.  Recovery never raises it: a respawn
allocates its fresh arenas only after copying nothing (the replacement
input arena is filled *from* the doomed one before it is unlinked, and
the two coexist only for the duration of that copy), and the degraded
in-process completion reads staged panels straight out of the surviving
arenas instead of copying them.

Failure handling: heal, then degrade, then fail
-----------------------------------------------
Worker loss is the steady state at serving scale, not the exception, so
the farm treats it as schedulable work:

1. **Prompt detection.**  The parent blocks on
   :func:`multiprocessing.connection.wait` over every worker's message
   pipe *and* process sentinel, so a death wakes it immediately — no
   liveness polling — and the failure is attributed to the exact panel
   staged on the lost worker.
2. **Respawn and replay.**  The lost panel's bytes still live in the
   parent-owned input arena, so recovery never re-reads the (possibly
   forward-only) source: a fresh worker is spawned on fresh arenas, the
   panel bytes are carried across, and the task is re-sent.  Each panel
   gets at most ``Config.farm_max_retries`` replays.
3. **Graceful degradation.**  With retries exhausted (or a respawn
   itself failing), the farm finishes every remaining panel **in
   process** on the same ascending schedule, computing the identical
   kernel-on-zeros partials the workers would have — the result stays
   bit-identical to the fault-free run (under deterministic backend
   selection, the same condition cross-worker-count identity carries).
4. :class:`~repro.errors.FarmError` is raised only when the degraded
   completion itself fails, naming the lost panel and chaining the
   underlying error.

Teardown can never wedge: a worker that survives ``terminate()`` (an
uninterruptible kernel call, masked signals) is escalated to
``Process.kill()``, and the arenas are unlinked whatever happened before.

Workers are forked where the platform supports it (runtime-registered
backends and the live configuration carry over for free); elsewhere the
pool falls back to the default start method and workers rebuild their
state from the pickled :class:`~repro.config.Config` snapshot — custom
backends registered at runtime do not survive that fallback.

Fault injection
---------------
The ``farm.worker`` site (:mod:`repro.faults`) is probed by the *parent*
once per staged panel and the fired token is shipped with the task, so
trigger state survives the worker it kills: ``kill`` hard-exits the
worker mid-task, ``raise`` fails it, ``slow`` delays the panel, and
``poison`` NaN-corrupts the partial (demonstrating what recovery cannot
detect — a worker that lies is outside the failure model).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import traceback
from multiprocessing import connection, shared_memory
from typing import List, Optional, Tuple

import numpy as np

from .. import faults
from ..config import Config, get_config, set_config
from ..errors import BudgetError, FarmError, ShapeError
from .cpu import available_cpus
from .ooc import as_source
from .plan import split_rows

__all__ = ["PanelFarm", "FarmRunStats", "run_farm"]

#: seconds between defensive re-checks while waiting on worker events
#: (events normally arrive through ``connection.wait`` immediately)
_WAIT_SECONDS = 5.0

#: seconds granted at each teardown escalation step (join after "stop",
#: join after terminate(), join after kill())
_REAP_SECONDS = 2.0


def _farm_context():
    """The multiprocessing context workers start under: ``fork`` where
    available (state — registered backends, the active config — carries
    over for free), the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing arena without adopting ownership.

    ``SharedMemory(name=...)`` registers the segment with the
    ``resource_tracker`` even on a plain attach (bpo-39959): a spawned
    child's own tracker would unlink the arena when the child exits —
    yanking it out from under the parent and every sibling — and a
    forked child shares the parent's tracker, where a compensating
    ``unregister`` would clobber the parent's legitimate registration.
    The parent owns the arenas and unlinks them exactly once, so the
    child must not track at all: registration is suppressed for the
    duration of the attach (Python 3.13's ``track=False``, back-ported).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_main(worker_id: int, spec: dict, conn) -> None:
    """Worker process body: attach arenas, build an engine, serve tasks.

    Each ``("task", panel_idx, rows, fault)`` message means "the first
    ``rows`` rows of my input arena hold panel ``panel_idx``": the worker
    enacts any shipped fault token, zeroes its output arena, runs one
    ``matmul_ata`` on the shared panel view, and acks
    ``("done", panel_idx)``.  Any exception is reported as
    ``("error", panel_idx, traceback)`` and ends the worker — the parent
    decides whether to respawn.
    """
    in_shm = out_shm = None
    panel_idx: Optional[int] = None
    try:
        set_config(spec["config"])
        in_shm = _attach(spec["in_name"])
        out_shm = _attach(spec["out_name"])
        n = spec["n"]
        dtype = np.dtype(spec["dtype"])
        out = np.ndarray((n, n), dtype=dtype, buffer=out_shm.buf)
        from .dispatch import ExecutionEngine
        engine = ExecutionEngine(**spec["engine"])
        try:
            while True:
                message = conn.recv()
                if message[0] == "stop":
                    break
                _, panel_idx, rows, fault = message
                # kill exits here, raise lands in the except below, slow
                # sleeps; "poison" comes back for the post-compute step
                action = faults.perform(fault)
                panel = np.ndarray((rows, n), dtype=dtype, buffer=in_shm.buf)
                out.fill(0)
                engine.matmul_ata(panel, out, spec["alpha"],
                                  algo=spec["algo"], cache=spec["cache"],
                                  parallel=spec["parallel"])
                if action == "poison":
                    out[...] = np.nan
                conn.send(("done", panel_idx))
                panel_idx = None
        finally:
            engine.close()
    except Exception:
        try:
            conn.send(("error", panel_idx, traceback.format_exc()))
        except Exception:
            pass
    finally:
        for shm in (in_shm, out_shm):
            if shm is not None:
                try:
                    shm.close()
                except Exception:
                    pass
        try:
            conn.close()
        except Exception:
            pass


class _Worker:
    """Parent-side handle of one worker slot: process, message pipe,
    arenas, and the panel currently staged in its input arena."""

    __slots__ = ("wid", "process", "conn", "in_shm", "out_shm", "out_view",
                 "panel", "dead")

    def __init__(self, wid, process, conn, in_shm, out_shm, out_view):
        self.wid = wid
        self.process = process
        self.conn = conn
        self.in_shm = in_shm
        self.out_shm = out_shm
        self.out_view = out_view
        #: panel index staged in the input arena; stays set after "done"
        #: (the arena keeps the bytes) until the partial is folded
        self.panel: Optional[int] = None
        self.dead = False


class _Recovery:
    """Mutable per-run recovery counters (frozen into the stats)."""

    __slots__ = ("respawns", "retried_panels", "degraded_panels")

    def __init__(self) -> None:
        self.respawns = 0
        self.retried_panels = 0
        self.degraded_panels = 0


class _DegradeSignal(Exception):
    """Internal: retries exhausted (or respawn impossible) — finish the
    remaining panels in-process."""

    def __init__(self, panel: Optional[int], reason: str) -> None:
        super().__init__(reason)
        self.panel = panel
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class FarmRunStats:
    """Accounting of one multi-process farm run.

    Attributes
    ----------
    panels:
        Panels the schedule fanned out.
    panel_rows:
        Rows per full panel (the last panel may be ragged).
    procs:
        Worker processes the run actually used (never more than there
        are panels).
    bytes_resident_high:
        High-water mark of the farm's working set: ``C`` plus one
        ``n x n`` output arena and one panel-sized input arena per
        worker.  Never exceeds ``budget_bytes`` when one is set.
    budget_bytes:
        The budget the schedule was sized against (0 = unbounded).
    respawns:
        Worker processes spawned beyond the initial pool — dead or
        failing workers replaced mid-run (plus replacements for workers
        that died idle while staging work remained).
    retried_panels:
        Panel replays: every time a lost panel was re-staged onto a
        respawned worker.  A panel failing twice counts twice.
    degraded_panels:
        Panels completed by the in-process degradation path after the
        retry budget was exhausted (0 = the process pool computed every
        panel).
    """

    panels: int
    panel_rows: int
    procs: int
    bytes_resident_high: int
    budget_bytes: int
    respawns: int = 0
    retried_panels: int = 0
    degraded_panels: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the run fell back to in-process completion."""
        return self.degraded_panels > 0


class PanelFarm:
    """Multi-process out-of-core executor for ``C = alpha*A^T A + beta*C``.

    Parameters
    ----------
    engine:
        The parent-side :class:`~repro.engine.dispatch.ExecutionEngine`
        (default: the process-wide engine).  The parent runs no panel
        kernels while the pool is healthy — it schedules, stages and
        folds — but the farm mirrors this engine's worker/parallel/tuner
        configuration into every worker process, uses it directly for
        degraded in-process completion, and records run statistics here.
    procs:
        Worker process count (``None`` resolves to
        :func:`~repro.engine.cpu.available_cpus`; must be >= 1 — for the
        in-process path use :class:`~repro.engine.ooc.ShardedAtA`, or
        ``procs=0`` on :meth:`ExecutionEngine.run_ooc`).
    budget:
        Working-set budget in bytes (``None`` reads
        ``Config.memory_budget``; 0 = unbounded).  See the module
        docstring for what a farm's working set charges.
    panel_rows:
        Explicit panel height, overriding the budget-derived one.  The
        budget still validates it.
    max_retries:
        Per-panel replay budget before degrading to in-process
        completion (``None`` reads ``Config.farm_max_retries``).
    """

    def __init__(self, engine=None, *, procs: Optional[int] = None,
                 budget: Optional[int] = None,
                 panel_rows: Optional[int] = None,
                 max_retries: Optional[int] = None) -> None:
        if engine is None:
            from .dispatch import default_engine
            engine = default_engine()
        if procs is None:
            procs = available_cpus()
        if procs < 1:
            raise ShapeError(f"procs must be >= 1, got {procs}")
        if panel_rows is not None and panel_rows < 1:
            raise ShapeError(f"panel_rows must be >= 1, got {panel_rows}")
        if budget is not None and budget < 0:
            raise BudgetError(f"budget must be >= 0 bytes, got {budget}")
        if max_retries is not None and max_retries < 0:
            raise ShapeError(
                f"max_retries must be >= 0, got {max_retries}")
        self.engine = engine
        self.procs = int(procs)
        self.budget = budget
        self.panel_rows = panel_rows
        self.max_retries = max_retries

    # -- schedule -----------------------------------------------------------
    def schedule(self, shape: Tuple[int, int], dtype,
                 budget: Optional[int] = None,
                 panel_rows: Optional[int] = None,
                 procs: Optional[int] = None):
        """Resolve ``(panel bounds, effective budget, procs)`` for a run.

        The farm's resident set is ``C`` plus, per worker, one ``n x n``
        output arena and one panel-sized input arena (module docstring).
        A finite budget sizes the panel as large as fits;
        :class:`BudgetError` names the smallest feasible working set when
        even one-row panels overflow.  ``procs`` is clamped to the panel
        count — idle workers would only cost arenas.
        """
        m, n = shape
        if m < 1 or n < 1:
            raise ShapeError(f"A must have positive dimensions, got {shape}")
        if procs is None:
            procs = self.procs
        procs = int(procs)
        if procs < 1:
            raise ShapeError(f"procs must be >= 1, got {procs}")
        if budget is None:
            budget = self.budget
        if budget is None:
            budget = get_config().memory_budget
        budget = int(budget)
        if budget < 0:
            raise BudgetError(f"budget must be >= 0 bytes, got {budget}")
        if panel_rows is None:
            panel_rows = self.panel_rows
        itemsize = np.dtype(dtype).itemsize
        c_bytes = n * n * itemsize
        row_bytes = n * itemsize
        if budget:
            headroom = budget - (1 + procs) * c_bytes
            fit = headroom // (procs * row_bytes) if headroom > 0 else 0
            if panel_rows is None:
                panel_rows = int(min(m, fit))
            else:
                panel_rows = min(panel_rows, m)
            if panel_rows < 1 or panel_rows > fit:
                rows = max(panel_rows, 1)
                raise BudgetError(
                    f"memory budget of {budget} bytes cannot hold the "
                    f"{n}x{n} output plus {procs} worker output arena(s) "
                    f"({(1 + procs) * c_bytes} bytes) plus {procs} input "
                    f"arena(s) of {rows} x {n} rows "
                    f"({procs * rows * row_bytes} bytes); the smallest "
                    f"feasible working set for procs={procs} is "
                    f"{(1 + procs) * c_bytes + procs * row_bytes} bytes — "
                    "raise REPRO_MEMORY_BUDGET / Config.memory_budget, "
                    "shrink the panel, or use fewer workers")
        elif panel_rows is None:
            panel_rows = m
        panel_rows = min(panel_rows, m)
        bounds = split_rows(m, panel_rows)
        return bounds, budget, min(procs, len(bounds))

    def _worker_engine_spec(self) -> dict:
        """Constructor kwargs mirroring the parent engine into a worker."""
        engine = self.engine
        spec = {"workers": engine.workers, "parallel": engine.parallel}
        if engine.tuner is not None:
            # each worker gets its own tuner on the shared table path;
            # merge-on-save (repro.engine.tuner) makes that safe — the
            # processes union their samples instead of clobbering
            spec["tuner"] = "measured"
        return spec

    # -- worker lifecycle ---------------------------------------------------
    def _spawn(self, context, worker_id: int, widest: int, n: int,
               dtype: np.dtype, spec_base: dict) -> _Worker:
        """Create one worker slot: fresh arenas, pipe, process."""
        in_shm = out_shm = parent_conn = child_conn = process = None
        try:
            in_shm = shared_memory.SharedMemory(
                create=True, size=max(1, widest * n * dtype.itemsize))
            out_shm = shared_memory.SharedMemory(
                create=True, size=max(1, n * n * dtype.itemsize))
            parent_conn, child_conn = context.Pipe(duplex=True)
            spec = dict(spec_base, in_name=in_shm.name, out_name=out_shm.name)
            process = context.Process(
                target=_worker_main, name=f"repro-farm-{worker_id}",
                args=(worker_id, spec, child_conn), daemon=True)
            process.start()
        except Exception:
            for shm in (in_shm, out_shm):
                if shm is not None:
                    try:
                        shm.close()
                        shm.unlink()
                    except Exception:
                        pass
            for conn in (parent_conn, child_conn):
                if conn is not None:
                    try:
                        conn.close()
                    except Exception:
                        pass
            raise
        child_conn.close()  # the parent keeps only its own pipe end
        out_view = np.ndarray((n, n), dtype=dtype, buffer=out_shm.buf)
        return _Worker(worker_id, process, parent_conn, in_shm, out_shm,
                       out_view)

    @staticmethod
    def _reap(worker: _Worker, unlink: bool = True) -> None:
        """Retire one worker slot, however stuck its process is.

        Escalation ladder: a cooperative worker exits on its own (the
        "stop" message or its error path) and the first join collects it;
        ``terminate()`` handles one ignoring its pipe; a worker that is
        uninterruptible even then — blocked in a kernel call, signals
        masked by an extension — gets ``Process.kill()`` (SIGKILL), which
        no userspace state can ignore, so teardown can never wedge on a
        single wedged child.  The arenas are closed (and, unless the
        caller still needs them, unlinked) afterwards in every case.
        """
        process = worker.process
        if process is not None:
            process.join(timeout=_REAP_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_REAP_SECONDS)
            if process.is_alive():
                process.kill()
                process.join(timeout=_REAP_SECONDS)
        worker.out_view = None  # release the buffer export before close()
        worker.dead = True
        try:
            worker.conn.close()
        except Exception:
            pass
        for shm in (worker.in_shm, worker.out_shm):
            try:
                shm.close()
                if unlink:
                    shm.unlink()
            except Exception:
                pass

    # -- execution ----------------------------------------------------------
    def run(self, a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
            beta: float = 1.0, algo: str = "auto",
            cache=None, parallel: Optional[str] = None,
            budget: Optional[int] = None, panel_rows: Optional[int] = None,
            procs: Optional[int] = None
            ) -> Tuple[np.ndarray, FarmRunStats]:
        """Fan ``a``'s panels out to the worker pool; returns ``(C, stats)``.

        ``a`` is anything :func:`~repro.engine.ooc.as_source` accepts.
        ``algo`` / ``cache`` / ``parallel`` apply to every worker's
        per-panel ``matmul_ata`` call, exactly as the in-process executor
        passes them through.
        """
        source = as_source(a)
        m, n = source.shape
        bounds, eff_budget, procs = self.schedule(
            (m, n), source.dtype, budget, panel_rows, procs)
        dtype = np.dtype(source.dtype)
        if c is None:
            c = np.zeros((n, n), dtype=dtype)
        else:
            if c.shape != (n, n):
                raise ShapeError(f"C must have shape ({n}, {n}) for A of "
                                 f"shape ({m}, {n}), got {c.shape}")
            if c.dtype != dtype:
                raise ShapeError("A and C must share a dtype, got "
                                 f"{dtype} and {c.dtype}")

        from ..blas.kernels import scale
        scale(c, beta)  # partials fold with += after one pre-scale
        widest = max(hi - lo for lo, hi in bounds)
        resident_high = ((1 + procs) * n * n
                         + procs * widest * n) * dtype.itemsize
        recovery = _Recovery()
        self._fan_out(source, bounds, c, alpha, procs, widest, recovery,
                      algo=algo, cache=cache, parallel=parallel)
        stats = FarmRunStats(panels=len(bounds), panel_rows=widest,
                             procs=procs,
                             bytes_resident_high=resident_high,
                             budget_bytes=eff_budget,
                             respawns=recovery.respawns,
                             retried_panels=recovery.retried_panels,
                             degraded_panels=recovery.degraded_panels)
        record = getattr(self.engine, "_record_farm", None)
        if record is not None:
            record(stats)
        return c, stats

    def _fan_out(self, source, bounds, c: np.ndarray, alpha: float,
                 procs: int, widest: int, recovery: _Recovery, *,
                 algo, cache, parallel) -> None:
        """Stage panels into worker arenas and fold partials into ``c``.

        Panels are staged in ascending order (a forward-only
        :class:`ChunkSource` never rewinds) and folded in ascending
        order (the fixed reduction tree).  A worker's arenas are reused
        only after its previous partial is folded, so at most ``procs``
        panels are in flight — exactly what the budget charged.

        Worker loss follows the heal → degrade → fail ladder of the
        module docstring; ``recovery`` accumulates what healing cost.
        """
        n = c.shape[1]
        dtype = c.dtype
        context = _farm_context()
        config = get_config()
        if isinstance(config, Config):  # defensive: always true today
            config = config.replace()
        max_retries = self.max_retries
        if max_retries is None:
            max_retries = get_config().farm_max_retries
        spec_base = {
            "n": n, "dtype": dtype.str, "alpha": alpha,
            "algo": algo, "cache": cache, "parallel": parallel,
            "config": config,
            "engine": self._worker_engine_spec(),
        }
        workers: List[_Worker] = []
        panels = source.panels(bounds)
        next_stage = 0
        next_fold = 0
        staged = {}   # panel idx -> worker whose input arena holds its bytes
        ready = {}    # finished panel idx -> worker holding its partial
        retries = {}  # panel idx -> replays consumed
        try:
            try:
                for worker_id in range(procs):
                    workers.append(self._spawn(context, worker_id, widest, n,
                                               dtype, spec_base))
            except Exception as exc:
                raise _DegradeSignal(
                    None, f"worker pool could not be spawned: {exc!r}"
                ) from exc

            def send_task(worker: _Worker, panel_idx: int) -> None:
                lo, hi = bounds[panel_idx]
                worker.panel = panel_idx
                staged[panel_idx] = worker
                fault = faults.probe("farm.worker", index=panel_idx)
                try:
                    worker.conn.send(("task", panel_idx, hi - lo, fault))
                except OSError:
                    pass  # worker already died; its sentinel reports it

            def stage(panel_idx: int, worker: _Worker) -> None:
                lo, hi = bounds[panel_idx]
                rows = hi - lo
                panel = next(panels)
                if panel.shape != (rows, n):
                    raise ShapeError(
                        f"source yielded a panel of shape {panel.shape}, "
                        f"expected ({rows}, {n})")
                arena = np.ndarray((rows, n), dtype=dtype,
                                   buffer=worker.in_shm.buf)
                try:
                    np.copyto(arena, panel)
                finally:
                    del arena  # release the buffer export before close()
                send_task(worker, panel_idx)

            def replace(worker: _Worker) -> _Worker:
                """Respawn one slot on fresh arenas (reaping the old)."""
                try:
                    fresh = self._spawn(context, worker.wid, widest, n,
                                        dtype, spec_base)
                except Exception as exc:
                    raise _DegradeSignal(
                        worker.panel,
                        f"worker {worker.process.name!r} could not be "
                        f"respawned: {exc!r}") from exc
                if worker.panel is not None:
                    # carry the lost panel's bytes across before the old
                    # arena is unlinked — the source never rewinds
                    lo, hi = bounds[worker.panel]
                    rows = hi - lo
                    old = np.ndarray((rows, n), dtype=dtype,
                                     buffer=worker.in_shm.buf)
                    new = np.ndarray((rows, n), dtype=dtype,
                                     buffer=fresh.in_shm.buf)
                    try:
                        np.copyto(new, old)
                    finally:
                        del old, new
                self._reap(worker)
                workers[worker.wid] = fresh
                recovery.respawns += 1
                return fresh

            def recover(worker: _Worker, reason: str) -> None:
                """Heal one lost worker: respawn and replay its panel."""
                worker.dead = True
                panel_idx = worker.panel
                if panel_idx is None or panel_idx in ready:
                    # nothing owed (died idle, or after acking its panel);
                    # the fold loop respawns the slot if staging remains
                    return
                if retries.get(panel_idx, 0) >= max_retries:
                    raise _DegradeSignal(panel_idx, reason)
                retries[panel_idx] = retries.get(panel_idx, 0) + 1
                recovery.retried_panels += 1
                fresh = replace(worker)
                send_task(fresh, panel_idx)

            while next_stage < min(procs, len(bounds)):
                stage(next_stage, workers[next_stage])
                next_stage += 1

            while next_fold < len(bounds):
                live = [w for w in workers if not w.dead]
                if not live:
                    raise _DegradeSignal(
                        None, "every worker slot is retired")  # unreachable
                sources = {w.conn: w for w in live}
                sources.update({w.process.sentinel: w for w in live})
                events = connection.wait(list(sources), timeout=_WAIT_SECONDS)
                touched = []
                for obj in events:
                    worker = sources[obj]
                    if worker not in touched:
                        touched.append(worker)
                for worker in touched:
                    if worker.dead:
                        continue  # recovered earlier in this batch
                    # drain messages first: a worker that acked its panel
                    # (or reported its failure) just before dying must be
                    # credited before the sentinel is believed
                    failure = None
                    while True:
                        try:
                            if not worker.conn.poll(0):
                                break
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            break
                        if message[0] == "done":
                            ready[message[1]] = worker
                        elif message[0] == "error":
                            _, panel_idx, trace = message
                            failure = (
                                f"worker {worker.process.name!r} failed "
                                "while computing panel "
                                f"{worker.panel if panel_idx is None else panel_idx}"
                                f" of {len(bounds)}:\n{trace}")
                            break
                    if failure is None and not worker.process.is_alive():
                        owed = (worker.panel is not None
                                and worker.panel not in ready)
                        if owed:
                            failure = (
                                f"worker {worker.process.name!r} died "
                                f"(exit code {worker.process.exitcode}) "
                                f"while computing panel {worker.panel} of "
                                f"{len(bounds)}")
                        else:
                            # died idle: retire the slot now, respawn
                            # lazily when the fold loop needs it
                            worker.dead = True
                    if failure is not None:
                        recover(worker, failure)
                while next_fold in ready:
                    worker = ready.pop(next_fold)
                    # the fixed reduction tree: partials join C strictly
                    # in ascending panel order, whatever order they
                    # arrived in — worker count can never change the bits
                    np.add(c, worker.out_view, out=c)
                    staged.pop(next_fold, None)
                    worker.panel = None
                    next_fold += 1
                    if next_stage < len(bounds):
                        if worker.dead:
                            worker = replace(worker)
                        stage(next_stage, worker)
                        next_stage += 1
        except _DegradeSignal as signal:
            self._finish_in_process(c, alpha, bounds, next_fold, staged,
                                    panels, recovery, signal,
                                    algo=algo, cache=cache, parallel=parallel)
        finally:
            for worker in workers:
                if not worker.dead:
                    try:
                        worker.conn.send(("stop",))
                    except Exception:
                        pass
            for worker in workers:
                self._reap(worker)

    def _finish_in_process(self, c: np.ndarray, alpha: float, bounds,
                           next_fold: int, staged, panels,
                           recovery: _Recovery, signal: _DegradeSignal, *,
                           algo, cache, parallel) -> None:
        """Graceful degradation: complete the remaining panels in-process.

        Replays the exact fold the workers would have produced — one
        kernel-on-zeros partial per remaining panel, added in ascending
        order — so the healed result stays bit-identical to the
        fault-free run.  Panels already staged are read straight out of
        the surviving shared-memory arenas (the parent owns them; a dead
        worker cannot take them along); panels beyond the staging
        frontier keep streaming from the source, which is positioned
        exactly there.  Raises :class:`FarmError` — the farm's only
        failure mode left — when this last line of defence fails too.
        """
        n = c.shape[1]
        partial = np.zeros_like(c)
        panel_idx = next_fold
        try:
            for panel_idx in range(next_fold, len(bounds)):
                lo, hi = bounds[panel_idx]
                rows = hi - lo
                worker = staged.get(panel_idx)
                if worker is not None:
                    panel = np.ndarray((rows, n), dtype=c.dtype,
                                       buffer=worker.in_shm.buf)
                else:
                    panel = next(panels)
                    if panel.shape != (rows, n):
                        raise ShapeError(
                            f"source yielded a panel of shape {panel.shape},"
                            f" expected ({rows}, {n})")
                partial.fill(0)
                try:
                    self.engine.matmul_ata(panel, partial, alpha, algo=algo,
                                           cache=cache, parallel=parallel)
                finally:
                    del panel  # release any arena buffer export
                np.add(c, partial, out=c)
                recovery.degraded_panels += 1
        except Exception as exc:
            raise FarmError(
                f"farm could not heal a worker failure ({signal.reason}); "
                "the retry budget was exhausted and the degraded "
                f"in-process completion failed at panel {panel_idx} of "
                f"{len(bounds)}: {exc!r}") from exc


# ---------------------------------------------------------------------------
# module-level convenience (default engine)
# ---------------------------------------------------------------------------

def run_farm(a, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
             beta: float = 1.0, algo: str = "auto", cache=None,
             parallel: Optional[str] = None, budget: Optional[int] = None,
             panel_rows: Optional[int] = None,
             procs: Optional[int] = None,
             max_retries: Optional[int] = None
             ) -> Tuple[np.ndarray, FarmRunStats]:
    """Multi-process out-of-core ``C = alpha * A^T A + beta * C`` on the
    default engine, returning ``(C, FarmRunStats)``; see :class:`PanelFarm`."""
    from .dispatch import default_engine
    return PanelFarm(default_engine(), procs=procs,
                     max_retries=max_retries).run(
        a, c, alpha, beta=beta, algo=algo, cache=cache, parallel=parallel,
        budget=budget, panel_rows=panel_rows)
