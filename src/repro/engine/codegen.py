"""Optional compiled lowering of fused plan steps.

A :class:`~repro.engine.plan.FusedStep` is already a closed description of
its work: a deduplicated operand-reference table plus micro-ops indexing
into it.  This module lowers that description to straight-line Python
source (every view resolution a literal slice, every kernel expression the
:func:`~repro.engine.plan.run_step` expression verbatim) and hands the
source to a *provider* for compilation — by default :func:`numba.njit`
when numba is importable.

The lowering ladder is honest at every rung:

* **numba absent** (it is not a dependency of this project): providers
  resolve to ``None``, :func:`prepare_plan` attaches nothing, and fused
  units interpret — results are bit-identical because nothing changed.
* **compilation or typing fails**: numba's lazy ``njit`` only types a
  kernel at its first call, so failures surface inside
  :func:`verify_first_use`; the unit is marked ``"rejected"`` and
  interprets forever after.
* **kernel compiles but drifts**: the first call runs the kernel against
  *cloned* output buffers and the interpreter against the live ones, then
  compares every written buffer with :func:`numpy.array_equal`.  Any
  mismatch — one ulp is enough — rejects the kernel.  Only a kernel that
  reproduced the interpreter bit-for-bit is promoted to ``"ready"`` and
  allowed to write live buffers.

Because the emitted source is plain numpy Python, tests can exercise the
whole ladder without numba by installing an ``exec``-based provider via
:func:`_set_provider` (and a misbehaving one to prove rejection works).

State transitions on a fused unit (``cold → verify → ready | rejected``)
are monotone and idempotent-by-value: concurrent engine runs may race on
the first use of a shared cached plan, but every racer computes the same
verdict from the same kernel, and the interpreter fallback keeps each
racer's own results correct regardless of who wins.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .plan import (OP_ADD, OP_FUSED, OP_GEMM, OP_GEMM_STORE, OP_LINCOMB,
                   OP_SCALE_STORE, OP_SYRK,
                   _ARENA_P, _ARENA_Q, _BASE_A, _BASE_B, _BASE_C,
                   ExecutionPlan, FusedStep, _interpret_fused, _resolve,
                   _tril_indices)

__all__ = ["available", "emit_fused_source", "prepare_plan",
           "verify_first_use"]

_PREP_LOCK = threading.Lock()

#: Test hook: a callable ``provider(source, context) -> kernel | None``
#: installed via :func:`_set_provider`; ``None`` means "use numba".
_override: Optional[Callable] = None

_numba = None
_numba_checked = False


def _set_provider(provider: Optional[Callable]) -> None:
    """Install a kernel provider override (``None`` restores the default).

    The provider receives the emitted source string and the context
    namespace the source needs (``np`` plus precomputed triangle index
    arrays) and returns a callable ``kernel(a, b, c, p, q, m, alpha)`` or
    ``None`` to decline.  Tests use this to exercise compiled dispatch
    without numba — and to prove that a lying provider is rejected.
    """
    global _override
    _override = provider


def _get_numba():
    global _numba, _numba_checked
    if not _numba_checked:
        try:
            import numba  # noqa: F401 - optional, never a hard dependency
            _numba = numba
        except Exception:
            _numba = None
        _numba_checked = True
    return _numba


def available() -> bool:
    """Whether any kernel provider is reachable (override or numba)."""
    if _override is not None:
        return True
    return _get_numba() is not None


def _compile(source: str, context: dict):
    """Run the active provider; returns a kernel or ``None``."""
    if _override is not None:
        return _override(source, context)
    numba = _get_numba()
    if numba is None:
        return None
    namespace = dict(context)
    exec(compile(source, "<repro-codegen>", "exec"), namespace)
    return numba.njit(namespace["_fused_kernel"])


_BUF_NAMES = {_BASE_A: "a", _BASE_B: "b", _BASE_C: "c"}


def emit_fused_source(fused: FusedStep) -> Tuple[str, dict]:
    """Lower a fused unit to source; returns ``(source, context)``.

    The function body is the unit's micro-ops with every operand reference
    resolved through a literal slice expression and every kernel
    expression copied from :func:`~repro.engine.plan.run_step` — including
    the runtime ``alpha == 1.0`` short-circuit branches, so the compiled
    kernel and the interpreter execute the *same* floating-point
    expression tree for any alpha.  Triangle index arrays for syrk
    micro-ops are precomputed into the context (they are pure functions of
    the tile size, shared with the interpreter's cache).
    """
    lines: List[str] = ["def _fused_kernel(a, b, c, p, q, m, alpha):"]
    context: Dict[str, object] = {"np": np}
    for i, ref in enumerate(fused.refs):
        base = ref[0]
        if base in _BUF_NAMES:
            rows, cols = ref[1]
            lines.append(
                f"    v{i} = {_BUF_NAMES[base]}"
                f"[{rows.start}:{rows.stop}, {cols.start}:{cols.stop}]")
            continue
        buf = "p" if base == _ARENA_P else "q" if base == _ARENA_Q else "m"
        expr = f"{buf}[{ref[1]}:{ref[2]}].reshape({ref[3]}, {ref[4]})"
        window = ref[5]
        if window is not None:
            wr, wc = window
            expr += f"[{wr.start}:{wr.stop}, {wc.start}:{wc.stop}]"
        lines.append(f"    v{i} = {expr}")
    tmp = 0
    for mop in fused.micro:
        code = mop[0]
        if code == OP_GEMM:
            prod = f"v{mop[1]}.T @ v{mop[2]}"
            if mop[4]:
                lines.append("    if alpha == 1.0:")
                lines.append(f"        v{mop[3]} += {prod}")
                lines.append("    else:")
                lines.append(f"        v{mop[3]} += alpha * ({prod})")
            else:
                lines.append(f"    v{mop[3]} += {prod}")
        elif code == OP_GEMM_STORE:
            prod = f"v{mop[1]}.T @ v{mop[2]}"
            if mop[4]:
                lines.append("    if alpha == 1.0:")
                lines.append(f"        v{mop[3]}[...] = {prod}")
                lines.append("    else:")
                lines.append(f"        v{mop[3]}[...] = alpha * ({prod})")
            else:
                lines.append(f"    v{mop[3]}[...] = {prod}")
        elif code == OP_SCALE_STORE:
            coef = float(mop[3])
            if mop[4]:
                tmp += 1
                lines.append(f"    _c{tmp} = {coef!r} * alpha")
                lines.append(f"    if _c{tmp} == 1.0:")
                lines.append(f"        v{mop[1]}[...] = v{mop[2]}")
                lines.append("    else:")
                lines.append(f"        v{mop[1]}[...] = _c{tmp} * v{mop[2]}")
            elif coef == 1.0:
                lines.append(f"    v{mop[1]}[...] = v{mop[2]}")
            else:
                lines.append(f"    v{mop[1]}[...] = {coef!r} * v{mop[2]}")
        elif code == OP_LINCOMB:
            terms = []
            for src, coef, use_alpha in ((mop[2], float(mop[3]), mop[4]),
                                         (mop[5], float(mop[6]), mop[7])):
                tmp += 1
                if use_alpha:
                    lines.append(f"    _c{tmp} = {coef!r} * alpha")
                    lines.append(f"    _t{tmp} = v{src} if _c{tmp} == 1.0 "
                                 f"else _c{tmp} * v{src}")
                elif coef == 1.0:
                    lines.append(f"    _t{tmp} = v{src}")
                else:
                    lines.append(f"    _t{tmp} = {coef!r} * v{src}")
                terms.append(f"_t{tmp}")
            lines.append(f"    v{mop[1]}[...] = {terms[0]} + {terms[1]}")
        elif code == OP_ADD:
            coef = float(mop[3])
            if mop[4]:
                tmp += 1
                lines.append(f"    _c{tmp} = {coef!r} * alpha")
                lines.append(f"    if _c{tmp} == 1.0:")
                lines.append(f"        v{mop[1]} += v{mop[2]}")
                lines.append("    else:")
                lines.append(f"        v{mop[1]} += _c{tmp} * v{mop[2]}")
            elif coef == 1.0:
                lines.append(f"    v{mop[1]} += v{mop[2]}")
            else:
                lines.append(f"    v{mop[1]} += {coef!r} * v{mop[2]}")
        elif code == OP_SYRK:
            n = mop[3]
            tri = f"_tri{n}"
            if tri not in context:
                context[tri] = _tril_indices(n)
            tmp += 1
            lines.append(f"    _p{tmp} = v{mop[1]}.T @ v{mop[1]}")
            lines.append(f"    v{mop[2]}[{tri}] += alpha * _p{tmp}[{tri}]")
        else:  # OP_ZERO
            lines.append(f"    v{mop[1]}[...] = 0")
    return "\n".join(lines) + "\n", context


def prepare_plan(plan: ExecutionPlan) -> int:
    """Attach candidate kernels to a plan's cold fused units.

    Returns how many kernels were attached (entering ``"verify"`` state —
    they still must pass the first-use bit-identity gate before touching
    live buffers).  Units the provider declines are marked ``"rejected"``
    so they are not re-attempted on every run.  Idempotent and cheap when
    the plan has already been prepared: the no-cold-units check runs
    outside the lock.
    """
    steps = plan.steps
    if all(step[0] != OP_FUSED or step[1].kernel_state != "cold"
           for step in steps):
        return 0
    attached = 0
    with _PREP_LOCK:
        for step in steps:
            if step[0] != OP_FUSED:
                continue
            fused = step[1]
            if fused.kernel_state != "cold":
                continue
            source, context = emit_fused_source(fused)
            fused.source = source
            try:
                kernel = _compile(source, context)
            except Exception:
                kernel = None
            if kernel is None:
                fused.kernel_state = "rejected"
                continue
            fused.kernel = kernel
            fused.kernel_state = "verify"
            attached += 1
    return attached


def verify_first_use(fused: FusedStep, a, b, c, p, q, m,
                     alpha: float) -> None:
    """First call of an attached kernel: gate it on bit-identity.

    The kernel runs against *clones* of every writable buffer while the
    interpreter produces this call's real result on the live buffers, so a
    wrong (or crashing — numba types lazily, so compile errors land here)
    kernel can neither corrupt results nor skip this call's work.  Exact
    agreement promotes the kernel to ``"ready"``; anything else rejects it
    permanently.

    The comparison covers exactly the regions the unit's micro-ops write.
    Under DAG-parallel execution the rest of the shared buffers is fair
    game for concurrent steps (which would dirty a whole-buffer compare
    and spuriously reject a correct kernel); the unit's own read and
    write regions are data-race-free by DAG construction, so the clone
    snapshot is a stable pre-state for them.
    """
    kernel = fused.kernel
    if kernel is None:  # racer already rejected it
        fused.kernel_state = "rejected"
        _interpret_fused(fused, a, b, c, p, q, m, alpha)
        return
    kc, kp, kq, km = (buf.copy() if buf is not None else None
                      for buf in (c, p, q, m))
    ok = True
    try:
        kernel(a, b, kc, kp, kq, km, alpha)
    except Exception:
        ok = False
    _interpret_fused(fused, a, b, c, p, q, m, alpha)
    if ok:
        written = set()
        for mop in fused.micro:
            code = mop[0]
            written.add(mop[3] if code in (OP_GEMM, OP_GEMM_STORE)
                        else mop[2] if code == OP_SYRK else mop[1])
        for i in sorted(written):
            ref = fused.refs[i]
            live = _resolve(ref, a, b, c, p, q, m)
            clone = _resolve(ref, a, b, kc, kp, kq, km)
            if not np.array_equal(live, clone):
                ok = False
                break
    if ok:
        fused.kernel_state = "ready"
    else:
        fused.kernel = None
        fused.kernel_state = "rejected"
