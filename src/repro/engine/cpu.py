"""Host CPU detection that respects affinity and cgroup restrictions.

``os.cpu_count()`` reports the cores *installed* in the machine, not the
cores the current process may *use*: inside a container with a cpuset, or
after ``taskset``/``sched_setaffinity``, it overreports — exactly the
environments a process farm or DAG-threaded engine runs in.  Every gate
in the engine that sizes parallelism (the DAG worker cap, the out-of-core
auto-prefetch toggle, the panel farm's default worker count) therefore
asks :func:`available_cpus` instead, which prefers the scheduling
affinity mask of the calling process.

``os.sched_getaffinity`` is Linux-only; elsewhere (macOS, Windows) the
helper degrades to ``os.cpu_count()``, which on those platforms is the
best available answer.
"""

from __future__ import annotations

import os

__all__ = ["available_cpus"]


def available_cpus() -> int:
    """The number of CPUs this process may actually run on (>= 1).

    ``len(os.sched_getaffinity(0))`` where the platform supports it —
    honouring cpusets, container quota masks and ``taskset`` — with
    ``os.cpu_count()`` as the portable fallback.  Never returns less
    than 1, and never raises.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1
