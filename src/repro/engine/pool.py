"""Pool of reusable :class:`~repro.core.workspace.StrassenWorkspace` arenas.

``ata`` and ``fast_strassen`` allocate a fresh workspace on every call when
the caller does not supply one; under repeated traffic that allocation (and
the zero-fill of three arenas) is pure overhead.  The pool keeps released
workspaces on an idle list and hands them back to any later plan whose
exact :class:`~repro.core.workspace._Requirement` they can serve — plans
address the arenas by precompiled flat offsets, so a larger recycled
workspace is just as good as an exact-fit one.

Under mixed-shape traffic the pool is **best-fit** on both sides: an
acquisition takes the *smallest* idle workspace that can serve the plan
(leaving the large ones for the plans that actually need them), and a
release that finds the idle list full evicts the smallest idle workspace
when the released one is larger (retaining the workspaces most likely to
serve future requests, instead of repeatedly dropping a large workspace
and re-allocating it on the next large plan — which is what drives peak
memory).

The pool is thread-safe: concurrent executions each acquire a *distinct*
workspace (a workspace is never shared while checked out), which is what
makes both the engine's cross-thread use and the DAG executor's
concurrent steps safe — each DAG run owns one workspace whose lane
layout keeps concurrent steps on disjoint offsets.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..core.workspace import StrassenWorkspace, _Requirement
from .plan import ExecutionPlan

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """Bounded free-list of Strassen workspaces.

    Parameters
    ----------
    max_idle:
        Maximum number of workspaces kept on the idle list; releases beyond
        that are simply dropped (garbage collected).

    Attributes
    ----------
    allocations:
        Workspaces created because no idle one could serve the request.
    reuses:
        Acquisitions served from the idle list without allocating.
    evictions:
        Smaller idle workspaces dropped to admit a larger released one.
    drops:
        Released workspaces discarded because the idle list was full of
        workspaces at least as large.
    """

    def __init__(self, max_idle: int = 8) -> None:
        if max_idle < 0:
            raise ValueError(f"max_idle must be >= 0, got {max_idle}")
        self.max_idle = max_idle
        self._idle: List[StrassenWorkspace] = []
        self._lock = threading.Lock()
        self.allocations = 0
        self.reuses = 0
        self.evictions = 0
        self.drops = 0

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def idle_sizes(self) -> List[int]:
        """Total elements of each idle workspace (for tests/diagnostics)."""
        with self._lock:
            return [ws.total_elements for ws in self._idle]

    def acquire(self, plan: ExecutionPlan, dtype) -> Optional[StrassenWorkspace]:
        """Check out the *smallest* idle workspace able to serve ``plan``
        (``None`` if the plan needs no scratch space)."""
        if not plan.needs_workspace:
            return None
        req: _Requirement = plan.requirement
        dtype = np.dtype(dtype)
        with self._lock:
            best = -1
            best_total = -1
            for index, ws in enumerate(self._idle):
                if ws.dtype == dtype and ws.can_serve(req):
                    total = ws.total_elements
                    if best < 0 or total < best_total:
                        best, best_total = index, total
            if best >= 0:
                self.reuses += 1
                return self._idle.pop(best)
            self.allocations += 1
        m, n, k = plan.ws_shape
        return StrassenWorkspace(m, n, k, dtype=dtype, requirement=req)

    def release(self, workspace: Optional[StrassenWorkspace]) -> None:
        """Return a workspace to the idle list (no-op for ``None``).

        When the idle list is full, the smallest idle workspace is evicted
        if the released one is larger; otherwise the released workspace is
        dropped.  Either way the pool retains the ``max_idle`` largest
        workspaces seen recently, which minimises future allocations (and
        hence peak memory) under mixed-shape traffic.
        """
        if workspace is None:
            return
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(workspace)
                return
            if not self._idle:  # max_idle == 0
                self.drops += 1
                return
            smallest = min(range(len(self._idle)),
                           key=lambda i: self._idle[i].total_elements)
            if self._idle[smallest].total_elements < workspace.total_elements:
                self._idle[smallest] = workspace
                self.evictions += 1
            else:
                self.drops += 1

    def clear(self) -> int:
        """Drop all idle workspaces; returns how many were dropped."""
        with self._lock:
            dropped = len(self._idle)
            self._idle.clear()
            return dropped

    def clear_stats(self) -> None:
        """Reset the allocation/reuse/eviction counters."""
        with self._lock:
            self.allocations = self.reuses = self.evictions = self.drops = 0
