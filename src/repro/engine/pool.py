"""Pool of reusable :class:`~repro.core.workspace.StrassenWorkspace` arenas.

``ata`` and ``fast_strassen`` allocate a fresh workspace on every call when
the caller does not supply one; under repeated traffic that allocation (and
the zero-fill of three arenas) is pure overhead.  The pool keeps released
workspaces on an idle list and hands them back to any later plan whose
exact :class:`~repro.core.workspace._Requirement` they can serve — plans
address the arenas by precompiled flat offsets, so a larger recycled
workspace is just as good as an exact-fit one.

Under mixed-shape traffic the pool is **best-fit** on both sides: an
acquisition takes the *smallest* idle workspace that can serve the plan
(leaving the large ones for the plans that actually need them), and a
release that finds the idle list full evicts the smallest idle workspace
when the released one is larger (retaining the workspaces most likely to
serve future requests, instead of repeatedly dropping a large workspace
and re-allocating it on the next large plan — which is what drives peak
memory).

The pool is thread-safe: concurrent executions each acquire a *distinct*
workspace (a workspace is never shared while checked out), which is what
makes both the engine's cross-thread use and the DAG executor's
concurrent steps safe — each DAG run owns one workspace whose lane
layout keeps concurrent steps on disjoint offsets.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..core.workspace import StrassenWorkspace, _Requirement
from .plan import ExecutionPlan

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """Bounded free-list of Strassen workspaces.

    Parameters
    ----------
    max_idle:
        Maximum number of workspaces kept on the idle list; releases beyond
        that are simply dropped (garbage collected).

    Attributes
    ----------
    allocations:
        Workspaces created because no idle one could serve the request.
    reuses:
        Acquisitions served from the idle list without allocating.
    evictions:
        Smaller idle workspaces dropped to admit a larger released one.
    drops:
        Released workspaces discarded because the idle list was full of
        workspaces at least as large.
    trims:
        Idle workspaces dropped by :meth:`trim` to honour a byte budget.
    bytes_high_water:
        Largest pool footprint (idle + checked-out bytes) observed since
        construction (or the last :meth:`clear_stats`).  This is the
        number the out-of-core executor charges against
        ``Config.memory_budget`` — the pool's *peak* demand, not its
        current state.
    """

    def __init__(self, max_idle: int = 8) -> None:
        if max_idle < 0:
            raise ValueError(f"max_idle must be >= 0, got {max_idle}")
        self.max_idle = max_idle
        self._idle: List[StrassenWorkspace] = []
        self._lock = threading.Lock()
        self.allocations = 0
        self.reuses = 0
        self.evictions = 0
        self.drops = 0
        self.trims = 0
        self.bytes_high_water = 0
        self._bytes_idle = 0
        self._bytes_in_use = 0

    @staticmethod
    def _nbytes(ws: StrassenWorkspace) -> int:
        return int(ws.total_elements) * np.dtype(ws.dtype).itemsize

    def _note_footprint_locked(self) -> None:
        footprint = self._bytes_idle + self._bytes_in_use
        if footprint > self.bytes_high_water:
            self.bytes_high_water = footprint

    def footprint(self) -> int:
        """Current pool footprint in bytes: idle workspaces plus the ones
        checked out through :meth:`acquire` and not yet released."""
        with self._lock:
            return self._bytes_idle + self._bytes_in_use

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def idle_sizes(self) -> List[int]:
        """Total elements of each idle workspace (for tests/diagnostics)."""
        with self._lock:
            return [ws.total_elements for ws in self._idle]

    def acquire(self, plan: ExecutionPlan, dtype) -> Optional[StrassenWorkspace]:
        """Check out the *smallest* idle workspace able to serve ``plan``
        (``None`` if the plan needs no scratch space)."""
        if not plan.needs_workspace:
            return None
        req: _Requirement = plan.requirement
        dtype = np.dtype(dtype)
        with self._lock:
            best = -1
            best_total = -1
            for index, ws in enumerate(self._idle):
                if ws.dtype == dtype and ws.can_serve(req):
                    total = ws.total_elements
                    if best < 0 or total < best_total:
                        best, best_total = index, total
            if best >= 0:
                self.reuses += 1
                ws = self._idle.pop(best)
                nbytes = self._nbytes(ws)
                self._bytes_idle -= nbytes
                self._bytes_in_use += nbytes
                return ws
            self.allocations += 1
        m, n, k = plan.ws_shape
        ws = StrassenWorkspace(m, n, k, dtype=dtype, requirement=req)
        with self._lock:
            self._bytes_in_use += self._nbytes(ws)
            self._note_footprint_locked()
        return ws

    def release(self, workspace: Optional[StrassenWorkspace]) -> None:
        """Return a workspace to the idle list (no-op for ``None``).

        When the idle list is full, the smallest idle workspace is evicted
        if the released one is larger; otherwise the released workspace is
        dropped.  Either way the pool retains the ``max_idle`` largest
        workspaces seen recently, which minimises future allocations (and
        hence peak memory) under mixed-shape traffic.
        """
        if workspace is None:
            return
        nbytes = self._nbytes(workspace)
        with self._lock:
            # clamp: a workspace the caller allocated directly (never
            # acquired from this pool) may be released here — it was
            # never charged to the in-use total
            self._bytes_in_use = max(0, self._bytes_in_use - nbytes)
            if len(self._idle) < self.max_idle:
                self._idle.append(workspace)
                self._bytes_idle += nbytes
                self._note_footprint_locked()
                return
            if not self._idle:  # max_idle == 0
                self.drops += 1
                return
            smallest = min(range(len(self._idle)),
                           key=lambda i: self._idle[i].total_elements)
            if self._idle[smallest].total_elements < workspace.total_elements:
                self._bytes_idle -= self._nbytes(self._idle[smallest])
                self._idle[smallest] = workspace
                self._bytes_idle += nbytes
                self._note_footprint_locked()
                self.evictions += 1
            else:
                self.drops += 1

    def trim(self, max_bytes: int) -> int:
        """Drop idle workspaces, largest first, until the *idle* footprint
        fits in ``max_bytes``; returns how many were dropped.

        Checked-out workspaces are untouched (the pool cannot reclaim
        scratch that a running plan is addressing).  The out-of-core
        executor calls this before a sharded run so pooled scratch and the
        shard-resident set share ``Config.memory_budget`` instead of each
        claiming the whole budget independently.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        dropped = 0
        with self._lock:
            while self._idle and self._bytes_idle > max_bytes:
                largest = max(range(len(self._idle)),
                              key=lambda i: self._idle[i].total_elements)
                self._bytes_idle -= self._nbytes(self._idle[largest])
                self._idle.pop(largest)
                dropped += 1
            self.trims += dropped
        return dropped

    def clear(self) -> int:
        """Drop all idle workspaces; returns how many were dropped."""
        with self._lock:
            dropped = len(self._idle)
            self._idle.clear()
            self._bytes_idle = 0
            return dropped

    def clear_stats(self) -> None:
        """Reset the counters; the byte high-water restarts from the
        current footprint (not zero — the pool may still hold memory)."""
        with self._lock:
            self.allocations = self.reuses = self.evictions = self.drops = 0
            self.trims = 0
            self.bytes_high_water = self._bytes_idle + self._bytes_in_use
