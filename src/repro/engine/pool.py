"""Pool of reusable :class:`~repro.core.workspace.StrassenWorkspace` arenas.

``ata`` and ``fast_strassen`` allocate a fresh workspace on every call when
the caller does not supply one; under repeated traffic that allocation (and
the zero-fill of three arenas) is pure overhead.  The pool keeps released
workspaces on an idle list and hands them back to any later plan whose
exact :class:`~repro.core.workspace._Requirement` they can serve — plans
address the arenas by precompiled flat offsets, so a larger recycled
workspace is just as good as an exact-fit one.

The pool is thread-safe: concurrent executions each acquire a *distinct*
workspace (a workspace is never shared while checked out), which is what
makes the engine safe to call from the shared-memory scheduler's worker
threads.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..core.workspace import StrassenWorkspace, _Requirement
from .plan import ExecutionPlan

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """Bounded free-list of Strassen workspaces.

    Parameters
    ----------
    max_idle:
        Maximum number of workspaces kept on the idle list; releases beyond
        that are simply dropped (garbage collected).

    Attributes
    ----------
    allocations:
        Workspaces created because no idle one could serve the request.
    reuses:
        Acquisitions served from the idle list without allocating.
    """

    def __init__(self, max_idle: int = 8) -> None:
        if max_idle < 0:
            raise ValueError(f"max_idle must be >= 0, got {max_idle}")
        self.max_idle = max_idle
        self._idle: List[StrassenWorkspace] = []
        self._lock = threading.Lock()
        self.allocations = 0
        self.reuses = 0

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def acquire(self, plan: ExecutionPlan, dtype) -> Optional[StrassenWorkspace]:
        """Check out a workspace able to serve ``plan`` (``None`` if the
        plan needs no scratch space)."""
        if not plan.needs_workspace:
            return None
        req: _Requirement = plan.requirement
        dtype = np.dtype(dtype)
        with self._lock:
            for index, ws in enumerate(self._idle):
                if ws.dtype == dtype and ws.can_serve(req):
                    self.reuses += 1
                    return self._idle.pop(index)
            self.allocations += 1
        m, n, k = plan.ws_shape
        return StrassenWorkspace(m, n, k, dtype=dtype, requirement=req)

    def release(self, workspace: Optional[StrassenWorkspace]) -> None:
        """Return a workspace to the idle list (no-op for ``None``)."""
        if workspace is None:
            return
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(workspace)

    def clear(self) -> int:
        """Drop all idle workspaces; returns how many were dropped."""
        with self._lock:
            dropped = len(self._idle)
            self._idle.clear()
            return dropped

    def clear_stats(self) -> None:
        """Reset the allocation/reuse counters."""
        with self._lock:
            self.allocations = self.reuses = 0
