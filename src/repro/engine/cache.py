"""LRU cache of compiled execution plans.

Plans are pure functions of their key (see the plan-key contract in
:mod:`repro.engine`), so caching them is safe as long as the key captures
everything the compile walk consulted.  The two pieces of ambient state a
key cannot capture by value are handled here:

* the active :class:`repro.config.Config` — the cache snapshots a
  fingerprint of the plan-affecting fields (``base_case_elements``,
  ``max_recursion_depth``) and **invalidates the whole cache** the first
  time it observes a change, so a ``with configured(...)`` block or a
  ``set_config`` call can never serve a stale plan;
* concurrent compilation — a single lock serialises lookup/insert, which
  keeps the hit path cheap and lets worker threads share one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..config import Config, get_config
from .plan import ExecutionPlan

__all__ = ["PlanCache", "plan_config_fingerprint"]


def plan_config_fingerprint(cfg: Config) -> Tuple[int, int, str]:
    """The config fields a compiled plan can depend on.

    Shared with :mod:`repro.engine.tuner`: a change in these fields means
    a backend executes a structurally different plan, so both the plan
    cache and the tuner's timing table must invalidate on the same tuple.
    The fuse mode is part of it — fused and unfused compilations of the
    same shape are different step sequences with different timings (plan
    *keys* additionally carry a per-plan fused flag, so a tuner-arbitrated
    mix of fused and unfused plans coexists inside one fingerprint
    generation).
    """
    return (cfg.base_case_elements, cfg.max_recursion_depth, cfg.fuse)


_config_fingerprint = plan_config_fingerprint


class PlanCache:
    """A thread-safe LRU mapping of plan keys to compiled plans.

    Parameters
    ----------
    capacity:
        Maximum number of cached plans; the least recently used plan is
        evicted beyond that.

    Attributes
    ----------
    hits, misses:
        Lookup accounting (a miss triggers a compile).
    invalidations:
        Number of plans dropped because the library configuration changed.
    evictions:
        Number of plans dropped by the LRU bound.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._plans: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._fingerprint: Optional[Tuple[int, int]] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def _check_config(self) -> None:
        """Drop every plan if the plan-affecting configuration changed."""
        fingerprint = _config_fingerprint(get_config())
        if fingerprint != self._fingerprint:
            if self._fingerprint is not None and self._plans:
                self.invalidations += len(self._plans)
                self._plans.clear()
            self._fingerprint = fingerprint

    def get_or_compile(self, key: tuple,
                       factory: Callable[[], ExecutionPlan]) -> ExecutionPlan:
        """Return the cached plan for ``key``, compiling it on a miss.

        The compile itself runs *outside* the lock so one miss never blocks
        hits (or other compiles) on different keys.  Two threads racing on
        the same cold key may both compile; plans are immutable and
        identical, so the first insert wins and the duplicate is discarded.
        """
        with self._lock:
            self._check_config()
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        compiled = factory()
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:  # lost the race: keep the cached instance
                return plan
            self._plans[key] = compiled
            if len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
            return compiled

    def snapshot(self) -> Tuple[ExecutionPlan, ...]:
        """The currently cached plans, least recently used first (a stable
        copy: safe to iterate while other threads use the cache)."""
        with self._lock:
            return tuple(self._plans.values())

    def invalidate(self) -> int:
        """Explicitly drop every cached plan; returns how many were dropped."""
        with self._lock:
            dropped = len(self._plans)
            self.invalidations += dropped
            self._plans.clear()
            return dropped

    def clear_stats(self) -> None:
        """Reset the hit/miss/invalidation/eviction counters."""
        with self._lock:
            self.hits = self.misses = self.invalidations = self.evictions = 0
