"""Plan compilation: walk a recursion once, emit a flat execution plan.

The recursive algorithms in :mod:`repro.core` re-derive the same structure
on every call: quadrant partitions, cache-fit checks and workspace offsets
depend only on ``(shape, cache model, config)``, never on the matrix
*values*.  This module performs that walk exactly once and records the
result as an immutable :class:`ExecutionPlan` — an ordered tuple of
base-case kernel steps whose operands are precomputed views (slices of the
``A``/``C`` operands or ``(offset, shape)`` windows into the pooled
workspace arenas), plus the exact workspace requirement and pre-aggregated
flop/byte counter totals.

Executing a plan replays the identical kernel sequence the recursion would
have produced, so results are bit-for-bit equal to the direct calls; only
the Python-level recursion overhead, the per-call workspace allocation and
the per-kernel counter bookkeeping are amortised away.

Four algorithm kinds can be compiled:

``"syrk"``
    A single base-case ``syrk`` call (used when the operand fits in cache).
``"ata"``
    Algorithm 1 — the AtA recursion with its embedded FastStrassen calls,
    fully flattened including the Strassen workspace choreography.
``"strassen"``
    A standalone FastStrassen ``A^T B`` product.
``"recursive_gemm"``
    Algorithm 2 — the classical 8-way recursive ``A^T B``.
``"tiled"``
    A cache-sized column-block tiling of the lower triangle of ``A^T A``
    (``syrk`` diagonal blocks, ``gemm_t`` off-diagonal panels).

Dependency DAG
--------------
Because every step's operand regions are known at compile time, the
compiler can also derive the *step dependency graph*: step ``v`` depends on
an earlier step ``u`` whenever their regions conflict (they touch the same
storage and at least one of them writes it).  Steps that accumulate into
the same output region therefore form an **ordered chain in plan order** —
floating-point addition is not associative, so replaying the chain in the
sequential order is what keeps DAG execution bit-identical to the
sequential replay — while steps with provably disjoint writes carry no
edge and may run concurrently (see :mod:`repro.engine.dag`).

Scratch **lanes** widen the workspace for parallel execution: with
``lanes=K`` the compile-time arena simulator deals allocations round-robin
onto ``K`` disjoint sub-arenas, so scratch buffers that the sequential
layout would reuse (serialising their steps through write-after-read
edges) live at disjoint offsets instead.  The LIFO discipline survives the
split — any matched-pair subsequence of a properly nested alloc/release
sequence is itself properly nested — and the workspace requirement grows
to the sum of the per-lane high-water marks (at most ``K``× the sequential
requirement).  Scratch placement never changes values: every arena buffer
is zero-filled by an explicit plan step before it is read.

Step fusion
-----------
With ``fuse=True`` the compiler runs a fusion pass over the freshly built
DAG: every step whose *only* successor lies in some unit is absorbed into
that unit, growing **in-trees** of steps that end at a single sink (a
FastStrassen operand combine — zero + adds — typically fuses with its
consuming gemm, and ``syrk`` accumulation chains into a shared output
block collapse pairwise).  Each multi-step unit freezes into one
:class:`FusedStep` executed as a single dispatch: its distinct operand
references are resolved **once** and its members replay in plan order
through the exact kernel expressions of :func:`run_step`, so fused
execution is bit-identical to the unfused replay — absorbing a step into
its sole successor can never create a cycle (any path out of the step
enters the unit directly), every cross-unit edge leaves a unit's sink,
and units ordered by sink index replay as a topological order of the
original DAG.  A unit may only span a single scratch lane (operand-only
steps are lane-neutral), so fusion never collapses work the lane layout
deliberately decoupled; the contracted :class:`StepDag` carries
flop-weighted priorities so the DAG executor drains the critical path
first.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..blas.kernels import gemm_flops, syrk_flops
from ..cache.model import CacheModel
from ..config import get_config
from ..core.partition import split_dim
from ..core.strassen import STRASSEN_PRODUCTS
from ..core.workspace import _Requirement
from ..errors import ConfigurationError, ShapeError

__all__ = ["ExecutionPlan", "StepDag", "FusedStep", "compile_plan",
           "execute_plan", "run_step", "run_fused", "record_plan_counters",
           "split_rows", "PLAN_KINDS"]

PLAN_KINDS = ("syrk", "ata", "strassen", "recursive_gemm", "tiled")

# Operand bases (first element of a frozen operand reference).
_BASE_A = 0
_BASE_B = 1
_BASE_C = 2
_ARENA_P = 3
_ARENA_Q = 4
_ARENA_M = 5

# Step opcodes (first element of a frozen step tuple).
OP_SYRK = 0   # (OP_SYRK, a_ref, c_ref, n)               c[tril(n)] += alpha*(a.T@a)[tril(n)]
OP_GEMM = 1   # (OP_GEMM, a_ref, b_ref, c_ref, use_alpha) c += coef * a.T @ b
OP_ADD = 2    # (OP_ADD, dst_ref, src_ref, coef, use_alpha) dst += coef*src (prefix-truncated)
OP_ZERO = 3   # (OP_ZERO, ref)                            view[...] = 0
OP_FUSED = 4  # (OP_FUSED, FusedStep)                     replay members in one dispatch

# Peephole opcodes: produced by the fusion peepholes (see
# :func:`_peephole_store`), never by the step emitters.  Each replaces a
# ``zero → first accumulate`` pair (or, for OP_LINCOMB, a folded
# ``store → first add``) with one direct store, eliminating the zeroing
# pass and the read-modify-write of the accumulate.  They appear inside
# ``FusedStep.micro`` and — when a peephole shrinks a unit to a single
# micro-op and :func:`_micro_to_step` unwraps it — as top-level steps of
# fused plans; unfused plans never contain them.
OP_GEMM_STORE = 5   # (OP_GEMM_STORE, a_ref, b_ref, c_ref, use_alpha) c[...] = coef*(a.T@b)
OP_SCALE_STORE = 6  # (OP_SCALE_STORE, dst_ref, src_ref, coef, use_alpha) dst[...] = coef*src
OP_LINCOMB = 7      # (OP_LINCOMB, dst_ref, s1_ref, c1, u1, s2_ref, c2, u2) dst[...] = c1*s1 + c2*s2


class _Region:
    """A rectangular window into an operand or arena matrix (compile time).

    ``base`` identifies the storage (``A``/``B``/``C`` operand or one of the
    P/Q/M arenas); ``start`` is the flat arena offset of the base matrix
    *within its lane* (arenas only), ``lane`` the scratch lane the
    allocation was dealt onto, ``alloc_id`` the identity of the arena
    allocation the region windows (``None`` for operands), and
    ``(base_rows, base_cols)`` its shape; ``(r0, r1, c0, c1)`` bound this
    window inside the base matrix.
    """

    __slots__ = ("base", "start", "lane", "alloc_id", "base_rows", "base_cols",
                 "r0", "r1", "c0", "c1")

    def __init__(self, base, start, base_rows, base_cols, r0, r1, c0, c1,
                 lane=0, alloc_id=None):
        self.base = base
        self.start = start
        self.lane = lane
        self.alloc_id = alloc_id
        self.base_rows = base_rows
        self.base_cols = base_cols
        self.r0, self.r1, self.c0, self.c1 = r0, r1, c0, c1

    @classmethod
    def whole(cls, base: int, rows: int, cols: int, start: int = 0,
              lane: int = 0, alloc_id=None) -> "_Region":
        return cls(base, start, rows, cols, 0, rows, 0, cols, lane=lane,
                   alloc_id=alloc_id)

    @property
    def rows(self) -> int:
        return self.r1 - self.r0

    @property
    def cols(self) -> int:
        return self.c1 - self.c0

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def sub(self, r0: int, r1: int, c0: int, c1: int) -> "_Region":
        """Window relative to this region (like ``view[r0:r1, c0:c1]``)."""
        return _Region(self.base, self.start, self.base_rows, self.base_cols,
                       self.r0 + r0, self.r0 + r1, self.c0 + c0, self.c0 + c1,
                       lane=self.lane, alloc_id=self.alloc_id)

    def quadrants(self) -> Tuple["_Region", "_Region", "_Region", "_Region"]:
        """The four ceil/floor quadrants of Eq. (1), as regions."""
        m1, _ = split_dim(self.rows)
        n1, _ = split_dim(self.cols)
        m, n = self.rows, self.cols
        return (self.sub(0, m1, 0, n1), self.sub(0, m1, n1, n),
                self.sub(m1, m, 0, n1), self.sub(m1, m, n1, n))

    def limit_rows(self, count: int) -> "_Region":
        return self.sub(0, count, 0, self.cols)

    def freeze(self, shift: int = 0):
        """The compact runtime reference the executor resolves per step.

        ``shift`` is the flat base offset of the region's scratch lane
        (zero for operand regions), applied when the compiler finalises the
        lane layout.
        """
        if self.base in (_BASE_A, _BASE_B, _BASE_C):
            return (self.base, (slice(self.r0, self.r1), slice(self.c0, self.c1)))
        start = self.start + shift
        stop = start + self.base_rows * self.base_cols
        full = (self.r0 == 0 and self.r1 == self.base_rows
                and self.c0 == 0 and self.c1 == self.base_cols)
        window = None if full else (slice(self.r0, self.r1), slice(self.c0, self.c1))
        return (self.base, start, stop, self.base_rows, self.base_cols, window)


class _SimArena:
    """Compile-time mirror of :class:`repro.core.workspace.Arena`.

    Tracks offsets with the same LIFO discipline so that the frozen
    references point exactly where the live recursion would have placed its
    scratch, and records the high-water mark that sizes the pooled arena.

    With ``lanes > 1`` allocations are dealt round-robin onto independent
    lane stacks; each lane keeps the LIFO discipline (matched alloc/release
    pairs of a properly nested sequence stay properly nested under any
    assignment of whole pairs to lanes) and the arena's requirement becomes
    the sum of the per-lane high-water marks.
    """

    def __init__(self, base: int, lanes: int = 1) -> None:
        self.base = base
        self.lanes = lanes
        self._dealt = 0
        self.offsets = [0] * lanes
        self.high_waters = [0] * lanes
        self._stacks: List[List[Tuple[int, int]]] = [[] for _ in range(lanes)]
        self._alloc_serial = 0

    @property
    def high_water(self) -> int:
        return sum(self.high_waters)

    def lane_bases(self) -> List[int]:
        """Flat offset of each lane once lanes are laid out back to back."""
        bases, acc = [], 0
        for hw in self.high_waters:
            bases.append(acc)
            acc += hw
        return bases

    def allocate(self, rows: int, cols: int) -> _Region:
        lane = self._dealt % self.lanes
        self._dealt += 1
        offset = self.offsets[lane]
        self._alloc_serial += 1
        region = _Region.whole(self.base, rows, cols, start=offset, lane=lane,
                               alloc_id=(self.base, self._alloc_serial))
        self._stacks[lane].append((offset, rows * cols))
        self.offsets[lane] = offset + rows * cols
        self.high_waters[lane] = max(self.high_waters[lane], self.offsets[lane])
        return region

    def release(self, region: _Region) -> None:
        start, need = self._stacks[region.lane].pop()
        assert start == region.start and need == region.base_rows * region.base_cols
        self.offsets[region.lane] = start


@dataclasses.dataclass(frozen=True)
class StepDag:
    """The step dependency graph of a compiled plan.

    Edges always point forward in plan order (``u < v``), so any
    topological execution retires conflicting steps — in particular the
    accumulation chains into shared output regions — in exactly the
    sequential replay order, which is what keeps DAG execution bit-identical
    to :func:`execute_plan`.

    Attributes
    ----------
    preds:
        Per-step predecessor count (steps with count 0 are initially ready).
    succs:
        Per-step tuple of successor step indices.
    n_edges:
        Total number of dependency edges.
    critical_path:
        Length (in steps) of the longest dependency chain — the makespan
        lower bound in steps under unlimited workers.
    max_width:
        Largest number of steps sharing a dependency depth — an upper bound
        on how many steps can ever be in flight together.
    costs:
        Per-step estimated cost in flop-equivalents (moved elements for
        ``zero``/``add`` steps), or ``()`` on DAGs built without cost
        information.
    priorities:
        Per-step *bottom level*: the step's own cost plus the costliest
        downstream dependency chain hanging off it.  The DAG executor pops
        the highest priority first so the critical path drains ahead of
        leaf work; ties break by step index, and any pop order is
        bit-identical anyway (the DAG already serialises every conflicting
        pair).
    """

    preds: Tuple[int, ...]
    succs: Tuple[Tuple[int, ...], ...]
    n_edges: int
    critical_path: int
    max_width: int
    costs: Tuple[int, ...] = ()
    priorities: Tuple[int, ...] = ()

    @property
    def n_steps(self) -> int:
        return len(self.preds)

    @property
    def parallelism(self) -> float:
        """Average available parallelism (steps / critical path)."""
        return self.n_steps / self.critical_path if self.critical_path else 0.0


def _step_accesses(step) -> List[Tuple[_Region, bool]]:
    """``(region, is_write)`` pairs for one pending (un-frozen) step.

    The ``+=`` kernels read *and* write their destination; a write entry
    subsumes the read for conflict purposes.
    """
    op = step[0]
    if op == OP_SYRK:
        return [(step[1], False), (step[2], True)]
    if op == OP_GEMM:
        return [(step[1], False), (step[2], False), (step[3], True)]
    if op == OP_ADD:
        return [(step[2], False), (step[1], True)]
    return [(step[1], True)]  # OP_ZERO


def _dag_metrics(succs, costs):
    """``(critical_path, max_width, priorities)`` for a forward-edge DAG."""
    n = len(succs)
    depth = [1] * n
    for u in range(n):
        next_depth = depth[u] + 1
        for v in succs[u]:
            if depth[v] < next_depth:
                depth[v] = next_depth
    critical_path = max(depth) if n else 0
    width: Dict[int, int] = {}
    for d in depth:
        width[d] = width.get(d, 0) + 1
    # bottom level: own cost plus the costliest downstream chain, computed
    # backwards (edges only point forward, so successors are already final)
    prio = list(costs)
    for u in range(n - 1, -1, -1):
        best = 0
        for v in succs[u]:
            if prio[v] > best:
                best = prio[v]
        prio[u] += best
    return critical_path, (max(width.values()) if width else 0), tuple(prio)


def _build_dag(pending_steps: List[tuple],
               costs: Optional[List[int]] = None) -> StepDag:
    """Derive the dependency graph from the steps' read/write sets.

    For every storage region the builder keeps the last writing step and
    the readers since that write; a new access links after the last writer
    (read-after-write / write-after-write) and, when itself a write, after
    the readers (write-after-read) of every conflicting region.  Older
    conflicting accesses are already ordered before those through the same
    rule, so the transitive closure covers every conflicting pair — in
    particular, accumulation chains into a shared output region become
    ordered chains in plan order, which is the deterministic-accumulation
    rule that keeps DAG execution bit-identical to sequential replay.

    Conflicts are found structurally rather than by scanning all history:

    * The ``A``/``B`` operands are never written by any step, so their
      reads cannot conflict and are skipped outright.
    * ``C``-operand accesses are grouped by exact rectangle; distinct
      rectangles are cross-linked through symmetric overlap lists computed
      once when a rectangle first appears (for the emitted quadrant
      decompositions distinct output rectangles are disjoint, so these
      lists are empty in practice).
    * Arena accesses are grouped by *allocation identity*: two live
      allocations never share arena bytes (stack discipline), so only
      windows of the same allocation are geometry-checked.  Reuse of a
      released allocation's range is caught at the reusing allocation's
      first touch — always its covering ``OP_ZERO``, emitted before any
      other access — which links after every access of the dead
      allocations whose flat segments it overlaps (tracked in a per-lane
      occupancy list, segment-split on partial reuse).
    """
    n = len(pending_steps)
    succs: List[List[int]] = [[] for _ in range(n)]
    preds = [0] * n
    edge_count = [0]

    # C operand: exact rect -> [last_writer, readers]; symmetric overlap
    # lists between distinct rects, built when a rect first appears.
    c_groups: Dict[tuple, list] = {}
    c_rects: List[tuple] = []
    c_overlaps: Dict[tuple, List[tuple]] = {}

    # arenas: alloc_id -> list of [rect, last_writer, readers];
    # (base, lane) -> occupancy segments [start, end, alloc_id]
    alloc_groups: Dict[tuple, List[list]] = {}
    occupancy: Dict[tuple, List[list]] = {}

    def link(src, idx, linked):
        if src is None or src == idx or src in linked:
            return
        linked.add(src)
        succs[src].append(idx)
        preds[idx] += 1
        edge_count[0] += 1

    def link_group(group, is_write, idx, linked):
        link(group[-2], idx, linked)
        if is_write:
            for reader in group[-1]:
                link(reader, idx, linked)

    for idx, step in enumerate(pending_steps):
        linked = set()
        for region, is_write in _step_accesses(step):
            base = region.base
            if base in (_BASE_A, _BASE_B):
                continue
            rect = (region.r0, region.r1, region.c0, region.c1)
            if base == _BASE_C:
                own_group = c_groups.get(rect)
                if own_group is None:
                    over = [r for r in c_rects
                            if rect[0] < r[1] and r[0] < rect[1]
                            and rect[2] < r[3] and r[2] < rect[3]]
                    for other in over:
                        c_overlaps[other].append(rect)
                    c_overlaps[rect] = over
                    c_rects.append(rect)
                    own_group = c_groups[rect] = [None, []]
                link_group(own_group, is_write, idx, linked)
                for other in c_overlaps[rect]:
                    link_group(c_groups[other], is_write, idx, linked)
            else:
                groups = alloc_groups.get(region.alloc_id)
                if groups is None:
                    # first touch of this allocation (its covering zero):
                    # absorb dead allocations whose bytes it reuses
                    groups = alloc_groups[region.alloc_id] = []
                    space = occupancy.setdefault((base, region.lane), [])
                    start = region.start
                    end = start + region.base_rows * region.base_cols
                    kept = []
                    for seg in space:
                        s, e, old_id = seg
                        if s < end and start < e:
                            for old_group in alloc_groups.get(old_id, ()):
                                link(old_group[-2], idx, linked)
                                for reader in old_group[-1]:
                                    link(reader, idx, linked)
                            if s < start:
                                kept.append([s, start, old_id])
                            if end < e:
                                kept.append([end, e, old_id])
                        else:
                            kept.append(seg)
                    kept.append([start, end, region.alloc_id])
                    space[:] = kept
                own_group = None
                for group in groups:
                    r = group[0]
                    if r == rect:
                        own_group = group
                    if (rect[0] < r[1] and r[0] < rect[1]
                            and rect[2] < r[3] and r[2] < rect[3]):
                        link_group(group, is_write, idx, linked)
                if own_group is None:
                    own_group = [rect, None, []]
                    groups.append(own_group)
            if is_write:
                own_group[-2], own_group[-1] = idx, []
            else:
                own_group[-1].append(idx)

    n_edges = edge_count[0]
    step_costs = list(costs) if costs is not None else [1] * n
    critical_path, max_width, priorities = _dag_metrics(succs, step_costs)
    return StepDag(preds=tuple(preds),
                   succs=tuple(tuple(s) for s in succs),
                   n_edges=n_edges,
                   critical_path=critical_path,
                   max_width=max_width,
                   costs=tuple(step_costs),
                   priorities=priorities)


class FusedStep:
    """A run of plan steps collapsed into one dispatch unit.

    ``refs`` is the deduplicated tuple of frozen operand references the
    members touch; ``micro`` mirrors the members' opcodes with operands
    replaced by indices into ``refs``, so execution resolves each distinct
    reference exactly once and replays the members in plan order through
    the same kernel expressions as :func:`run_step` — bit-identical to the
    unfused replay by construction.

    The ``kernel``/``kernel_state``/``source`` slots are the only mutable
    state: :mod:`repro.engine.codegen` may attach a compiled kernel
    (``kernel_state`` walks ``"cold" → "verify" → "ready"`` or
    ``"rejected"``; a kernel must reproduce the interpreter bit-for-bit on
    its first call or it is rejected and the unit permanently falls back
    to interpretation).
    """

    __slots__ = ("refs", "micro", "n_members", "kernel", "kernel_state",
                 "source")

    def __init__(self, refs: tuple, micro: tuple, n_members: int) -> None:
        self.refs = refs
        self.micro = micro
        self.n_members = n_members
        self.kernel = None
        self.kernel_state = "cold"
        self.source = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FusedStep(members={self.n_members}, refs={len(self.refs)}, "
                f"kernel={self.kernel_state})")


def _ref_key(ref) -> tuple:
    """A hashable identity for a frozen operand reference.

    Frozen operand refs embed ``slice`` objects, which are unhashable on
    Python 3.11, so the fusion ref-table dedup keys on this flattened
    tuple instead.
    """
    if ref[0] in (_BASE_A, _BASE_B, _BASE_C):
        rows, cols = ref[1]
        return (ref[0], rows.start, rows.stop, cols.start, cols.stop)
    window = ref[5]
    if window is not None:
        window = (window[0].start, window[0].stop,
                  window[1].start, window[1].stop)
    return (ref[0], ref[1], ref[2], ref[3], ref[4], window)


def _refs_overlap(ra, rb) -> bool:
    """Whether two frozen operand references can touch the same memory.

    Conservative: arena references compare their flat ``[start, stop)``
    intervals (ignoring any refining window), operand references their
    bounding rectangles.  Distinct bases never overlap (the P/Q/M arenas
    are separate buffers, as are A/B/C).
    """
    if ra[0] != rb[0]:
        return False
    if ra[0] in (_BASE_A, _BASE_B, _BASE_C):
        (ar, ac), (br, bc) = ra[1], rb[1]
        return (ar.start < br.stop and br.start < ar.stop
                and ac.start < bc.stop and bc.start < ac.stop)
    return ra[1] < rb[2] and rb[1] < ra[2]


def _step_lanes(step) -> frozenset:
    """The scratch lanes a pending step touches (operand-only steps: none)."""
    return frozenset(region.lane for region, _ in _step_accesses(step)
                     if region.base >= _ARENA_P)


#: Fused units stop absorbing members past this size: units large enough
#: to amortise dispatch overhead, small enough that generated kernel
#: sources stay compilable.
_FUSE_MAX_MEMBERS = 64


def _fuse_groups(dag: StepDag, pending_steps: List[tuple]) -> Tuple[List[List[int]], List[int]]:
    """Partition steps into fused units by in-tree absorption.

    Walking steps from last to first, a step whose successors *all*
    belong to one unit is absorbed into that unit when the union of
    their scratch-lane sets stays within a single lane (so fusion never
    serialises work the lane layout deliberately decoupled).  Absorption
    is safe unconditionally: every out-edge of the absorbed step enters
    the absorbing unit, so contracting it cannot create a cycle, and
    every remaining cross-unit edge leaves a unit's *sink* (its
    highest-index member) — ordering units by sink with members in plan
    order is therefore a topological order of the original DAG, which is
    what keeps fused replay bit-identical.  (Walking downward means a
    successor's unit assignment is already final when it is read, so the
    single lookup ``unit[succ]`` resolves the whole absorption chain.)

    Returns ``(groups, unit)``: member index lists in execution order, and
    the per-step unit-root (sink index) map.
    """
    n = len(pending_steps)
    succs = dag.succs
    unit = list(range(n))
    lanesets: List[frozenset] = [_step_lanes(s) for s in pending_steps]
    unit_lanes: Dict[int, frozenset] = {}
    unit_sizes: Dict[int, int] = {}
    for u in range(n - 1, -1, -1):
        out = succs[u]
        if out:
            root = unit[out[0]]
            if all(unit[v] == root for v in out[1:]):
                merged = unit_lanes.get(root, lanesets[root]) | lanesets[u]
                size = unit_sizes.get(root, 1)
                if len(merged) <= 1 and size < _FUSE_MAX_MEMBERS:
                    unit[u] = root
                    unit_lanes[root] = merged
                    unit_sizes[root] = size + 1
    members: Dict[int, List[int]] = {}
    for i in range(n):
        members.setdefault(unit[i], []).append(i)
    groups = [members[root] for root in sorted(members)]
    return groups, unit


def _contract_dag(dag: StepDag, groups: List[List[int]], unit: List[int],
                  costs: List[int]) -> StepDag:
    """Contract a step DAG onto its fused units.

    Unit positions follow ascending sink index, so contracted edges still
    point forward (every cross-unit edge leaves a sink, and sinks order
    the units); unit cost is the sum of member costs.
    """
    n_units = len(groups)
    pos = {grp[-1]: j for j, grp in enumerate(groups)}  # sink -> position
    upos = [pos[root] for root in unit] if unit else []
    succ_sets: List[set] = [set() for _ in range(n_units)]
    preds = [0] * n_units
    for u, out in enumerate(dag.succs):
        pu = upos[u]
        for v in out:
            pv = upos[v]
            if pv != pu and pv not in succ_sets[pu]:
                succ_sets[pu].add(pv)
                preds[pv] += 1
    succs = tuple(tuple(sorted(s)) for s in succ_sets)
    unit_costs = [sum(costs[i] for i in grp) for grp in groups]
    critical_path, max_width, priorities = _dag_metrics(succs, unit_costs)
    return StepDag(preds=tuple(preds), succs=succs,
                   n_edges=sum(len(s) for s in succ_sets),
                   critical_path=critical_path, max_width=max_width,
                   costs=tuple(unit_costs), priorities=priorities)


def _micro_accesses(mop) -> Tuple[tuple, int]:
    """``(read ref indices, written ref index)`` of one micro-op.

    The accumulate ops (gemm/add/syrk) read their destination too, but
    that read is what the peepholes reason about explicitly, so only the
    *source* reads are listed here.  Store ops genuinely do not read
    their destination.
    """
    code = mop[0]
    if code in (OP_GEMM, OP_GEMM_STORE):
        return (mop[1], mop[2]), mop[3]
    if code in (OP_ADD, OP_SCALE_STORE):
        return (mop[2],), mop[1]
    if code == OP_SYRK:
        return (mop[1],), mop[2]
    if code == OP_LINCOMB:
        return (mop[2], mop[5]), mop[1]
    return (), mop[1]  # OP_ZERO


def _peephole_store(micro: tuple, refs: tuple) -> tuple:
    """Fold ``zero → first accumulate`` pairs into direct stores.

    A zeroed region whose next touch is a gemm or add accumulating into
    *exactly* that region never exposes the zeros: ``0 + x`` and ``x``
    are equal for every float (they differ only in the sign of a zero, to
    which ``np.array_equal`` — the engine's identity check — is
    insensitive).  The pair becomes one :data:`OP_GEMM_STORE` /
    :data:`OP_SCALE_STORE` micro-op, dropping both the zeroing pass and
    the read-modify-write of the accumulate.  This is the optimisation
    fusion uniquely unlocks: as separate plan steps the pair crosses a
    dispatch boundary and each side must stay a complete kernel.

    The fold is withheld whenever anything could observe the zeros first:
    an intervening micro-op that reads or writes memory overlapping the
    zeroed region (checked conservatively via :func:`_refs_overlap`), a
    syrk consumer (it writes only the lower triangle, so the upper
    triangle needs the explicit zeros), or an accumulate whose region is
    not the identical reference.
    """
    out = list(micro)
    pending: Dict[int, int] = {}  # ref index -> position of its OP_ZERO
    for pos, mop in enumerate(micro):
        code = mop[0]
        reads, dst = _micro_accesses(mop)
        for ri in list(pending):
            zref = refs[ri]
            if any(r == ri or _refs_overlap(refs[r], zref) for r in reads):
                del pending[ri]
        if code != OP_ZERO:
            zpos = pending.pop(dst, None)
            if zpos is not None and code == OP_GEMM:
                out[zpos] = None
                out[pos] = (OP_GEMM_STORE,) + mop[1:]
            elif zpos is not None and code == OP_ADD:
                out[zpos] = None
                out[pos] = (OP_SCALE_STORE,) + mop[1:]
            # OP_SYRK consumes the zeros for real (upper triangle): the
            # popped zero stays materialised in ``out``.
        dref = refs[dst]
        for ri in list(pending):
            if ri != dst and _refs_overlap(dref, refs[ri]):
                del pending[ri]
        if code == OP_ZERO:
            pending[dst] = pos
    return _peephole_lincomb([m for m in out if m is not None], refs)


def _peephole_lincomb(micro: List[tuple], refs: tuple) -> tuple:
    """Fold ``scale-store → first accumulate`` pairs into one combined add.

    After :func:`_peephole_store`, a ``dst[...] = c1*s1`` whose next touch
    is ``dst += c2*s2`` computes ``np.add(c1*s1, c2*s2, out=dst)`` — the
    very expression the pair evaluated, with the round-trip through
    ``dst`` elided, so this fold is *strictly* bit-identical (same float
    operations on the same values).  The same overlap discipline as the
    store pass applies: any intervening read or write of memory
    overlapping the stored region, or a source aliasing the destination,
    withholds the fold.
    """
    out = list(micro)
    pending: Dict[int, int] = {}  # ref index -> position of its SCALE_STORE
    for pos, mop in enumerate(micro):
        code = mop[0]
        reads, dst = _micro_accesses(mop)
        for ri in list(pending):
            sref = refs[ri]
            if any(r == ri or _refs_overlap(refs[r], sref) for r in reads):
                del pending[ri]
        if code != OP_SCALE_STORE:
            spos = pending.pop(dst, None)
            if spos is not None and code == OP_ADD:
                store = out[spos]
                out[spos] = None
                out[pos] = (OP_LINCOMB, dst, store[2], store[3], store[4],
                            mop[2], mop[3], mop[4])
        dref = refs[dst]
        for ri in list(pending):
            # the fold defers the store's source read to the accumulate's
            # position, so a write into the *source* region kills the
            # pending just like a write into the stored region does
            # (scratch-arena reuse regenerates sources in place)
            src = micro[pending[ri]][2]
            if ri != dst and (_refs_overlap(dref, refs[ri])
                              or _refs_overlap(dref, refs[src])):
                del pending[ri]
        if code == OP_SCALE_STORE and not _refs_overlap(refs[dst],
                                                        refs[mop[2]]):
            pending[dst] = pos
    return tuple(m for m in out if m is not None)


def _fuse_frozen(member_steps: List[tuple]) -> FusedStep:
    """Freeze a multi-step unit into a :class:`FusedStep`.

    Operand references are deduplicated into a table so execution (and a
    generated kernel) resolves each distinct view once, and the
    :func:`_peephole_store` pass folds ``zero → accumulate`` member pairs
    into single direct stores — ``n_members`` keeps counting the original
    plan steps the unit absorbed, so ``len(micro)`` may be smaller.
    """
    refs: List[tuple] = []
    index: Dict[tuple, int] = {}

    def rid(ref) -> int:
        key = _ref_key(ref)
        i = index.get(key)
        if i is None:
            i = index[key] = len(refs)
            refs.append(ref)
        return i

    micro: List[tuple] = []
    for step in member_steps:
        op = step[0]
        if op == OP_SYRK:
            micro.append((OP_SYRK, rid(step[1]), rid(step[2]), step[3]))
        elif op == OP_GEMM:
            micro.append((OP_GEMM, rid(step[1]), rid(step[2]), rid(step[3]),
                          step[4]))
        elif op == OP_ADD:
            micro.append((OP_ADD, rid(step[1]), rid(step[2]), step[3],
                          step[4]))
        else:  # OP_ZERO
            micro.append((OP_ZERO, rid(step[1])))
    frozen_refs = tuple(refs)
    return FusedStep(frozen_refs, _peephole_store(tuple(micro), frozen_refs),
                     len(member_steps))


def _micro_to_step(mop: tuple, refs: tuple) -> tuple:
    """Re-freeze a lone micro-op as a top-level plan step (indices → refs).

    A two-member unit whose peephole folded it down to a single store
    needs no :class:`FusedStep` indirection at all — dispatching it as a
    plain step through :func:`run_step` skips the per-call ref-table
    resolution and interpreter frames, which is most of a one-op unit's
    runtime.
    """
    code = mop[0]
    if code in (OP_GEMM, OP_GEMM_STORE):
        return (code, refs[mop[1]], refs[mop[2]], refs[mop[3]], mop[4])
    if code in (OP_ADD, OP_SCALE_STORE):
        return (code, refs[mop[1]], refs[mop[2]], mop[3], mop[4])
    if code == OP_LINCOMB:
        return (code, refs[mop[1]], refs[mop[2]], mop[3], mop[4],
                refs[mop[5]], mop[6], mop[7])
    if code == OP_SYRK:
        return (code, refs[mop[1]], refs[mop[2]], mop[3])
    return (code, refs[mop[1]])  # OP_ZERO


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """An immutable compiled execution plan.

    Attributes
    ----------
    key:
        The cache key the plan was compiled under (see
        :mod:`repro.engine` for the plan-key contract).
    algo:
        One of :data:`PLAN_KINDS`.
    shape:
        Problem shape: ``(m, n)`` for A^T A kinds, ``(m, n, k)`` for A^T B.
    out_shape:
        Shape of the output matrix ``C``.
    dtype:
        Operand dtype the plan was compiled for.
    steps:
        The ordered kernel steps (opaque tuples consumed by
        :func:`execute_plan`).
    requirement:
        Exact per-arena workspace requirement, or ``None`` when the plan
        needs no scratch space.  With ``lanes > 1`` this is the sum of the
        per-lane requirements, so concurrent steps address disjoint
        scratch.
    ws_shape:
        The ``(m, n, k)`` sizing triple a replacement
        :class:`~repro.core.workspace.StrassenWorkspace` would be built
        with (used by the pool on a miss).
    kernel_counters:
        Pre-aggregated ``(category, calls, flops, byte_elements)`` totals;
        recorded when ``config.count_flops`` is on.  ``byte_elements`` is
        multiplied by the dtype itemsize at execution time.
    step_counters:
        ``(category, calls)`` recursion-step totals recorded
        unconditionally, mirroring ``counters.record`` in the recursions.
    lanes:
        Number of scratch lanes the plan's arena offsets were laid out for.
    dag:
        The step dependency graph (:class:`StepDag`), or ``None`` when the
        plan was compiled for sequential replay only.  On fused plans the
        DAG is contracted onto the dispatch units.
    fused:
        Whether the compiler's fusion pass ran (plans compiled with and
        without it carry distinct cache keys so they never alias).
    fused_steps:
        Number of primitive steps the fusion pass collapsed — members of
        multi-member :class:`FusedStep` units plus the zero->accumulate
        pairs unwrapped into direct-store steps (``0`` when fusion found
        no chains);
        ``n_steps`` counts dispatch units after fusion.
    """

    key: tuple
    algo: str
    shape: Tuple[int, ...]
    out_shape: Tuple[int, int]
    dtype: np.dtype
    steps: Tuple[tuple, ...]
    requirement: Optional[_Requirement]
    ws_shape: Optional[Tuple[int, int, int]]
    kernel_counters: Tuple[Tuple[str, int, int, int], ...]
    step_counters: Tuple[Tuple[str, int], ...]
    lanes: int = 1
    dag: Optional[StepDag] = None
    fused: bool = False
    fused_steps: int = 0

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def needs_workspace(self) -> bool:
        return self.requirement is not None


class _Compiler:
    """Shared state for one compilation walk.

    Steps are recorded with live :class:`_Region` operands and frozen only
    in :meth:`finish`, once the lane layout (and hence every arena region's
    flat base offset) is known.
    """

    def __init__(self, model: CacheModel, lanes: int = 1) -> None:
        self.model = model
        self.max_depth = get_config().max_recursion_depth
        self.steps: List[tuple] = []
        self.costs: List[int] = []
        self.kernel_totals: Dict[str, List[int]] = {}
        self.step_totals: Dict[str, int] = {}
        self.p = _SimArena(_ARENA_P, lanes)
        self.q = _SimArena(_ARENA_Q, lanes)
        self.m = _SimArena(_ARENA_M, lanes)
        self.lanes = lanes

    # -- counter aggregation ----------------------------------------------
    def _count(self, category: str, flops: int, byte_elements: int) -> None:
        tot = self.kernel_totals.setdefault(category, [0, 0, 0])
        tot[0] += 1
        tot[1] += flops
        tot[2] += byte_elements

    def _count_step(self, category: str) -> None:
        self.step_totals[category] = self.step_totals.get(category, 0) + 1

    # -- step emission ------------------------------------------------------
    def emit_syrk(self, a: _Region, c: _Region) -> None:
        m, n = a.rows, a.cols
        # plans carry only the triangle size; the O(n^2) index arrays are
        # materialised lazily in a bounded shared cache at execution time,
        # so a wide single-syrk plan does not pin megabytes in the LRU
        self.steps.append((OP_SYRK, a, c, n))
        self.costs.append(syrk_flops(m, n))
        self._count("syrk", syrk_flops(m, n), m * n + n * (n + 1) // 2)

    def emit_gemm(self, a: _Region, b: _Region, c: _Region, use_alpha: bool) -> None:
        m, n, k = a.rows, a.cols, b.cols
        self.steps.append((OP_GEMM, a, b, c, use_alpha))
        self.costs.append(gemm_flops(m, n, k))
        self._count("gemm", gemm_flops(m, n, k), m * n + m * k + n * k)

    def emit_add(self, dst: _Region, src: _Region, coef: float, use_alpha: bool) -> None:
        # add_into adds over the overlapping top-left block; truncate both
        # references to that overlap at compile time.
        rows = min(dst.rows, src.rows)
        cols = min(dst.cols, src.cols)
        if rows == 0 or cols == 0:
            return
        self.steps.append((OP_ADD, dst.sub(0, rows, 0, cols),
                           src.sub(0, rows, 0, cols), float(coef), use_alpha))
        self.costs.append(2 * rows * cols)
        self._count("axpy", 2 * rows * cols, 3 * rows * cols)

    def emit_zero(self, region: _Region) -> None:
        self.steps.append((OP_ZERO, region))
        self.costs.append(region.size)

    # -- FastStrassen (mirrors core.strassen._strassen) ---------------------
    def _combine(self, terms, arena: _SimArena):
        """Compile-time analogue of ``strassen._combine``."""
        if len(terms) == 1 and terms[0][1] == 1:
            return terms[0][0], False
        rows = max(t[0].rows for t in terms)
        cols = max(t[0].cols for t in terms)
        buf = arena.allocate(rows, cols)
        self.emit_zero(buf)
        for region, sign in terms:
            if region.size:
                self.emit_add(buf, region, float(sign), False)
        return buf, True

    def strassen(self, a: _Region, b: _Region, c: _Region,
                 use_alpha: bool, depth: int) -> None:
        m, n = a.rows, a.cols
        k = b.cols
        if m == 0 or n == 0 or k == 0:
            return
        if self.model.fits_gemm(m, n, k) or (m <= 1 and n <= 1 and k <= 1):
            self.emit_gemm(a, b, c, use_alpha)
            return
        if depth > self.max_depth:
            raise ShapeError("Strassen recursion exceeded max_recursion_depth; "
                             "check the base-case configuration")
        self._count_step("strassen_step")

        a_q = dict(zip(("11", "12", "21", "22"), a.quadrants()))
        b_q = dict(zip(("11", "12", "21", "22"), b.quadrants()))
        c_q = dict(zip(("11", "12", "21", "22"), c.quadrants()))

        for spec in STRASSEN_PRODUCTS:
            a_terms = [(a_q[qd], s) for qd, s in spec["a"]]
            b_terms = [(b_q[qd], s) for qd, s in spec["b"]]
            a_op, a_owned = self._combine(a_terms, self.p)
            b_op, b_owned = self._combine(b_terms, self.q)
            m_eff = min(a_op.rows, b_op.rows)
            prod = self.m.allocate(a_op.cols, b_op.cols)
            self.emit_zero(prod)
            if m_eff:
                self.strassen(a_op.limit_rows(m_eff), b_op.limit_rows(m_eff),
                              prod, False, depth + 1)
            for target, sign in spec["c"]:
                tgt = c_q[target]
                if tgt.size and prod.size:
                    self.emit_add(tgt, prod, float(sign), use_alpha)
            self.m.release(prod)
            if b_owned:
                self.q.release(b_op)
            if a_owned:
                self.p.release(a_op)

    # -- AtA (mirrors core.ata._ata_recurse) --------------------------------
    def ata(self, a: _Region, c: _Region, depth: int) -> None:
        m, n = a.rows, a.cols
        if m == 0 or n == 0:
            return
        if self.model.fits_ata(m, n) or (m <= 1 and n <= 1):
            self.emit_syrk(a, c)
            return
        if depth > self.max_depth:
            raise ShapeError("AtA recursion exceeded max_recursion_depth; "
                             "check the base-case configuration")
        self._count_step("ata_step")

        a11, a12, a21, a22 = a.quadrants()
        n1, _ = split_dim(n)
        c11 = c.sub(0, n1, 0, n1)
        c22 = c.sub(n1, n, n1, n)
        c21 = c.sub(n1, n, 0, n1)

        self.ata(a11, c11, depth + 1)
        if a21.size:
            self.ata(a21, c11, depth + 1)
        if a12.size:
            self.ata(a12, c22, depth + 1)
        if a22.size:
            self.ata(a22, c22, depth + 1)

        if c21.size:
            if a12.size and a11.size:
                self.strassen(a12, a11, c21, True, depth + 1)
            if a22.size and a21.size:
                self.strassen(a22, a21, c21, True, depth + 1)

    # -- RecursiveGEMM (mirrors core.recursive_gemm._recurse) ----------------
    def recursive_gemm(self, a: _Region, b: _Region, c: _Region, depth: int) -> None:
        m, n = a.rows, a.cols
        k = b.cols
        if m == 0 or n == 0 or k == 0:
            return
        if self.model.fits_gemm(m, n, k) or (m <= 1 and n <= 1 and k <= 1):
            self.emit_gemm(a, b, c, True)
            return
        if depth > self.max_depth:
            raise ShapeError("RecursiveGEMM exceeded max_recursion_depth; "
                             "check the base-case configuration")
        self._count_step("recursive_gemm_step")

        a_q = dict(zip(("11", "12", "21", "22"), a.quadrants()))
        b_q = dict(zip(("11", "12", "21", "22"), b.quadrants()))
        c_q = dict(zip(("11", "12", "21", "22"), c.quadrants()))
        for i in (1, 2):
            for j in (1, 2):
                for l in (1, 2):
                    a_block = a_q[f"{l}{i}"]
                    b_block = b_q[f"{l}{j}"]
                    c_block = c_q[f"{i}{j}"]
                    if a_block.size == 0 or b_block.size == 0 or c_block.size == 0:
                        continue
                    self.recursive_gemm(a_block, b_block, c_block, depth + 1)

    # -- tiled AtA -----------------------------------------------------------
    def tiled_ata(self, a: _Region, c: _Region) -> None:
        m, n = a.rows, a.cols
        tile = max(1, min(n, self.model.capacity_words // max(1, 2 * m)))
        bounds = [(j, min(j + tile, n)) for j in range(0, n, tile)]
        for bi, (i0, i1) in enumerate(bounds):
            for bj, (j0, j1) in enumerate(bounds[:bi + 1]):
                if bi == bj:
                    self.emit_syrk(a.sub(0, m, i0, i1), c.sub(i0, i1, i0, i1))
                else:
                    self.emit_gemm(a.sub(0, m, i0, i1), a.sub(0, m, j0, j1),
                                   c.sub(i0, i1, j0, j1), True)

    # -- finalisation --------------------------------------------------------
    def _freeze_steps(self) -> Tuple[tuple, ...]:
        """Resolve lane base offsets and freeze every pending step."""
        bases = {arena.base: arena.lane_bases()
                 for arena in (self.p, self.q, self.m)}

        def fz(region: _Region):
            shift = 0
            if region.base >= _ARENA_P:
                shift = bases[region.base][region.lane]
            return region.freeze(shift)

        frozen: List[tuple] = []
        for step in self.steps:
            op = step[0]
            if op == OP_SYRK:
                frozen.append((op, fz(step[1]), fz(step[2]), step[3]))
            elif op == OP_GEMM:
                frozen.append((op, fz(step[1]), fz(step[2]), fz(step[3]), step[4]))
            elif op == OP_ADD:
                frozen.append((op, fz(step[1]), fz(step[2]), step[3], step[4]))
            else:
                frozen.append((op, fz(step[1])))
        return tuple(frozen)

    def finish(self, key: tuple, algo: str, shape: Tuple[int, ...],
               out_shape: Tuple[int, int], dtype,
               ws_shape: Optional[Tuple[int, int, int]],
               build_dag: bool = False, fuse: bool = False) -> ExecutionPlan:
        needs_ws = self.p.high_water or self.q.high_water or self.m.high_water
        requirement = None
        if needs_ws:
            # per-lane requirements summed: lanes are stacked back to back,
            # so concurrently executing steps address disjoint scratch
            per_lane = [_Requirement(p_elements=self.p.high_waters[lane],
                                     q_elements=self.q.high_waters[lane],
                                     m_elements=self.m.high_waters[lane],
                                     depth=0)
                        for lane in range(self.lanes)]
            requirement = per_lane[0]
            for extra in per_lane[1:]:
                requirement = requirement + extra
        fused_steps = 0
        if fuse:
            # the fusion pass needs the full step DAG even when the plan is
            # compiled for sequential replay (the contracted DAG is only
            # attached when requested)
            full = _build_dag(self.steps, self.costs)
            groups, unit = _fuse_groups(full, self.steps)
            frozen = self._freeze_steps()
            steps: List[tuple] = []
            for grp in groups:
                if len(grp) == 1:
                    steps.append(frozen[grp[0]])
                else:
                    fused = _fuse_frozen([frozen[i] for i in grp])
                    if len(fused.micro) == 1:
                        # a zero->accumulate pair the store peephole
                        # folded to one op: dispatch it as a plain step
                        steps.append(_micro_to_step(fused.micro[0],
                                                    fused.refs))
                    else:
                        steps.append((OP_FUSED, fused))
                    fused_steps += len(grp)
            steps = tuple(steps)
            dag = (_contract_dag(full, groups, unit, self.costs)
                   if build_dag else None)
        else:
            steps = self._freeze_steps()
            dag = _build_dag(self.steps, self.costs) if build_dag else None
        return ExecutionPlan(
            key=key, algo=algo, shape=shape, out_shape=out_shape,
            dtype=np.dtype(dtype), steps=steps,
            requirement=requirement,
            ws_shape=ws_shape if needs_ws else None,
            kernel_counters=tuple((cat, t[0], t[1], t[2])
                                  for cat, t in self.kernel_totals.items()),
            step_counters=tuple(self.step_totals.items()),
            lanes=self.lanes, dag=dag, fused=bool(fuse),
            fused_steps=fused_steps,
        )


def split_rows(m: int, max_rows: int) -> Tuple[Tuple[int, int], ...]:
    """The deterministic row-panel schedule: ``[lo, hi)`` bounds covering
    ``0..m`` in ascending order, every panel ``max_rows`` tall except a
    ragged last one.

    This is the sharding analogue of the plan compiler's quadrant walk —
    a pure function of ``(m, max_rows)``, so two runs (or two sources
    feeding the same matrix) always see the identical panel sequence,
    which is what makes out-of-core accumulation reproducible bit for bit
    (see :mod:`repro.engine.ooc`).
    """
    if m < 1:
        raise ShapeError(f"cannot panel an empty row range, got m={m}")
    if max_rows < 1:
        raise ShapeError(f"panel rows must be >= 1, got {max_rows}")
    return tuple((lo, min(lo + max_rows, m)) for lo in range(0, m, max_rows))


def compile_plan(algo: str, shape: Tuple[int, ...], dtype, model: CacheModel,
                 key: Optional[tuple] = None, lanes: int = 1,
                 build_dag: Optional[bool] = None,
                 fuse: bool = False) -> ExecutionPlan:
    """Compile one execution plan.

    Parameters
    ----------
    algo:
        One of :data:`PLAN_KINDS`.
    shape:
        ``(m, n)`` for the A^T A kinds (``syrk``/``ata``/``tiled``),
        ``(m, n, k)`` for the A^T B kinds (``strassen``/``recursive_gemm``).
    dtype:
        Operand dtype (affects only the workspace the plan will request).
    model:
        The :class:`~repro.cache.model.CacheModel` providing the base-case
        predicates; the walk consults it exactly as the live recursion
        would.
    key:
        The cache key to stamp on the plan (defaults to a local tuple).
    lanes:
        Scratch lanes to spread arena allocations over (``1`` reproduces
        the sequential LIFO layout; more lanes decouple scratch reuse so
        the DAG executor can overlap Strassen products, at the cost of up
        to ``lanes``× the sequential workspace).
    build_dag:
        Whether to derive the step dependency graph; defaults to
        ``lanes > 1``.  Sequential replay ignores the DAG either way.
    fuse:
        Run the fusion pass (see *Step fusion* in the module docstring),
        collapsing in-tree step chains into :class:`FusedStep` dispatch
        units.  Fused execution is bit-identical to the unfused replay;
        the default cache key carries the flag so fused and unfused plans
        never alias.
    """
    if algo not in PLAN_KINDS:
        raise ShapeError(f"unknown plan kind {algo!r}; expected one of {PLAN_KINDS}")
    if lanes < 1:
        raise ConfigurationError(f"scratch lanes must be >= 1, got {lanes}")
    if build_dag is None:
        build_dag = lanes > 1
    comp = _Compiler(model, lanes=lanes)
    if algo in ("syrk", "ata", "tiled"):
        m, n = shape
        a = _Region.whole(_BASE_A, m, n)
        c = _Region.whole(_BASE_C, n, n)
        out_shape = (n, n)
        ws_shape: Optional[Tuple[int, int, int]] = None
        if algo == "tiled":
            comp.tiled_ata(a, c)
        elif algo == "syrk" or comp.model.fits_ata(m, n) or (m <= 1 and n <= 1):
            # ata() short-circuits to a single syrk call on fitting shapes.
            comp.emit_syrk(a, c)
        else:
            m1, _ = split_dim(m)
            n1, _ = split_dim(n)
            ws_shape = (m1, n1, n1)
            comp.ata(a, c, depth=0)
    else:
        m, n, k = shape
        a = _Region.whole(_BASE_A, m, n)
        b = _Region.whole(_BASE_B, m, k)
        c = _Region.whole(_BASE_C, n, k)
        out_shape = (n, k)
        ws_shape = (m, n, k)
        if comp.model.fits_gemm(m, n, k) or (m <= 1 and n <= 1 and k <= 1):
            comp.emit_gemm(a, b, c, True)
        elif algo == "strassen":
            comp.strassen(a, b, c, True, depth=0)
        else:
            comp.recursive_gemm(a, b, c, depth=0)
    if key is None:
        key = (algo, shape, np.dtype(dtype).str, model.capacity_words, lanes,
               bool(fuse))
    return comp.finish(key, algo, tuple(shape), out_shape, dtype, ws_shape,
                       build_dag=build_dag, fuse=fuse)


#: Shared cache of np.tril_indices results keyed by n, bounded both in
#: entry count and in per-entry size: a triangle larger than
#: _TRIL_CACHE_MAX_N is computed transiently (exactly what the direct syrk
#: kernel does on every call) instead of being pinned in process memory.
_TRIL_CACHE: Dict[int, tuple] = {}
_TRIL_CACHE_MAX = 64
_TRIL_CACHE_MAX_N = 1024  # ~8 MB of int64 indices per entry at the cap


def _tril_indices(n: int) -> tuple:
    if n > _TRIL_CACHE_MAX_N:
        return np.tril_indices(n)
    idx = _TRIL_CACHE.get(n)
    if idx is None:
        idx = np.tril_indices(n)
        if len(_TRIL_CACHE) >= _TRIL_CACHE_MAX:
            try:
                _TRIL_CACHE.pop(next(iter(_TRIL_CACHE)), None)
            except (StopIteration, RuntimeError):  # concurrent mutation
                pass
        _TRIL_CACHE[n] = idx
    return idx


def _resolve(ref, a, b, c, p, q, m):
    """Materialise a frozen operand reference into a live numpy view."""
    base = ref[0]
    if base == _BASE_A:
        return a[ref[1]]
    if base == _BASE_B:
        return b[ref[1]]
    if base == _BASE_C:
        return c[ref[1]]
    buf = p if base == _ARENA_P else q if base == _ARENA_Q else m
    view = buf[ref[1]:ref[2]].reshape(ref[3], ref[4])
    window = ref[5]
    return view if window is None else view[window]


def run_step(step, a, b, c, p, q, m, alpha: float) -> None:
    """Execute one frozen plan step against live operands.

    The kernel expressions reproduce the base-case kernels of
    :mod:`repro.blas.kernels` exactly (same numpy expressions, same
    ``alpha == 1.0`` short-circuits), which is what keeps plan execution —
    sequential or DAG-scheduled — bit-for-bit identical to the direct
    recursions.  Both :func:`execute_plan` and the
    :class:`~repro.engine.dag.DagExecutor` route every step through this
    single function so the two paths cannot drift apart.  The store
    opcodes only appear in fused plans (see :func:`_peephole_store`):
    each writes ``x`` where its zero->accumulate pair wrote ``0 + x`` —
    equal under ``np.array_equal`` for every float.
    """
    op = step[0]
    if op == OP_GEMM:
        av = _resolve(step[1], a, b, c, p, q, m)
        bv = _resolve(step[2], a, b, c, p, q, m)
        cv = _resolve(step[3], a, b, c, p, q, m)
        coef = alpha if step[4] else 1.0
        if coef == 1.0:
            cv += av.T @ bv
        else:
            cv += coef * (av.T @ bv)
    elif op == OP_ADD:
        dst = _resolve(step[1], a, b, c, p, q, m)
        src = _resolve(step[2], a, b, c, p, q, m)
        coef = step[3] * (alpha if step[4] else 1.0)
        if coef == 1.0:
            dst += src
        else:
            dst += coef * src
    elif op == OP_SCALE_STORE:
        dst = _resolve(step[1], a, b, c, p, q, m)
        src = _resolve(step[2], a, b, c, p, q, m)
        coef = step[3] * (alpha if step[4] else 1.0)
        if coef == 1.0:
            dst[...] = src
        else:
            np.multiply(src, coef, out=dst)
    elif op == OP_GEMM_STORE:
        av = _resolve(step[1], a, b, c, p, q, m)
        bv = _resolve(step[2], a, b, c, p, q, m)
        cv = _resolve(step[3], a, b, c, p, q, m)
        coef = alpha if step[4] else 1.0
        if coef == 1.0:
            np.matmul(av.T, bv, out=cv)
        else:
            np.multiply(av.T @ bv, coef, out=cv)
    elif op == OP_LINCOMB:
        s1 = _resolve(step[2], a, b, c, p, q, m)
        s2 = _resolve(step[5], a, b, c, p, q, m)
        c1 = step[3] * (alpha if step[4] else 1.0)
        c2 = step[6] * (alpha if step[7] else 1.0)
        t1 = s1 if c1 == 1.0 else c1 * s1
        t2 = s2 if c2 == 1.0 else c2 * s2
        np.add(t1, t2, out=_resolve(step[1], a, b, c, p, q, m))
    elif op == OP_SYRK:
        av = _resolve(step[1], a, b, c, p, q, m)
        cv = _resolve(step[2], a, b, c, p, q, m)
        idx = _tril_indices(step[3])
        product = av.T @ av
        cv[idx] += alpha * product[idx]
    elif op == OP_ZERO:
        _resolve(step[1], a, b, c, p, q, m)[...] = 0
    else:  # OP_FUSED
        run_fused(step[1], a, b, c, p, q, m, alpha)


def _interpret_fused(fused: FusedStep, a, b, c, p, q, m, alpha: float) -> None:
    """Replay a fused unit's members through the interpreter.

    Each distinct operand reference resolves to a view exactly once (views
    alias storage, not values, so hoisting the resolution out of the member
    loop cannot change results); the member expressions are the
    :func:`run_step` kernel expressions verbatim, including the
    ``coef == 1.0`` short-circuits — fused replay is bit-identical to
    running the members as individual steps.  The exception is the
    :func:`_peephole_store` micro-ops, which store ``x`` where the member
    pair would have stored ``0 + x``: equal for every float under
    ``np.array_equal`` (only a zero's sign can differ).
    """
    views = [_resolve(ref, a, b, c, p, q, m) for ref in fused.refs]
    for mop in fused.micro:
        code = mop[0]
        if code == OP_GEMM:
            cv = views[mop[3]]
            coef = alpha if mop[4] else 1.0
            if coef == 1.0:
                cv += views[mop[1]].T @ views[mop[2]]
            else:
                cv += coef * (views[mop[1]].T @ views[mop[2]])
        elif code == OP_ADD:
            dst = views[mop[1]]
            coef = mop[3] * (alpha if mop[4] else 1.0)
            if coef == 1.0:
                dst += views[mop[2]]
            else:
                dst += coef * views[mop[2]]
        elif code == OP_GEMM_STORE:
            cv = views[mop[3]]
            coef = alpha if mop[4] else 1.0
            if coef == 1.0:
                np.matmul(views[mop[1]].T, views[mop[2]], out=cv)
            else:
                np.multiply(views[mop[1]].T @ views[mop[2]], coef, out=cv)
        elif code == OP_SCALE_STORE:
            dst = views[mop[1]]
            coef = mop[3] * (alpha if mop[4] else 1.0)
            if coef == 1.0:
                dst[...] = views[mop[2]]
            else:
                np.multiply(views[mop[2]], coef, out=dst)
        elif code == OP_LINCOMB:
            c1 = mop[3] * (alpha if mop[4] else 1.0)
            c2 = mop[6] * (alpha if mop[7] else 1.0)
            t1 = views[mop[2]] if c1 == 1.0 else c1 * views[mop[2]]
            t2 = views[mop[5]] if c2 == 1.0 else c2 * views[mop[5]]
            np.add(t1, t2, out=views[mop[1]])
        elif code == OP_SYRK:
            av = views[mop[1]]
            cv = views[mop[2]]
            idx = _tril_indices(mop[3])
            product = av.T @ av
            cv[idx] += alpha * product[idx]
        else:  # OP_ZERO
            views[mop[1]][...] = 0


def run_fused(fused: FusedStep, a, b, c, p, q, m, alpha: float) -> None:
    """Execute one fused unit: compiled kernel when verified, else interpret.

    A kernel attached by :mod:`repro.engine.codegen` runs its first call
    in ``"verify"`` state — executed against cloned outputs and compared
    bit-for-bit with the interpreter before it is trusted (see
    ``codegen.verify_first_use``).  ``"cold"`` and ``"rejected"`` units
    always interpret.
    """
    state = fused.kernel_state
    if state == "ready":
        kernel = fused.kernel
        if kernel is not None:
            kernel(a, b, c, p, q, m, alpha)
            return
    elif state == "verify":
        from .codegen import verify_first_use
        verify_first_use(fused, a, b, c, p, q, m, alpha)
        return
    _interpret_fused(fused, a, b, c, p, q, m, alpha)


def record_plan_counters(plan: ExecutionPlan, itemsize: int) -> None:
    """Record a plan's pre-aggregated counter totals in one shot.

    Shared by the sequential and DAG executors so both report identical
    accounting regardless of scheduling.
    """
    from ..blas import counters  # local import to keep module import light

    if get_config().count_flops and plan.kernel_counters:
        for category, calls, flops, byte_elements in plan.kernel_counters:
            counters.record(category, flops=flops,
                            bytes=byte_elements * itemsize, calls=calls)
    for category, calls in plan.step_counters:
        counters.record(category, calls=calls)


def execute_plan(plan: ExecutionPlan, a: np.ndarray, c: np.ndarray,
                 alpha: float = 1.0, workspace=None,
                 b: Optional[np.ndarray] = None) -> np.ndarray:
    """Replay a compiled plan on concrete operands, in plan order.

    The step expressions reproduce the base-case kernels of
    :mod:`repro.blas.kernels` exactly (see :func:`run_step`), so the result
    is bit-for-bit identical to running the original recursion; validation
    and counter bookkeeping are hoisted out of the per-step loop.

    Parameters
    ----------
    plan:
        The compiled :class:`ExecutionPlan`.
    a, b, c:
        Operands; ``b`` is required for the A^T B kinds and must be ``None``
        otherwise.
    alpha:
        The runtime scalar the plan's symbolic alpha resolves to.
    workspace:
        A :class:`~repro.core.workspace.StrassenWorkspace` whose arenas are
        at least as large as ``plan.requirement`` (only when
        ``plan.needs_workspace``).  The plan addresses the arenas by raw
        offset, so the workspace's own stack bookkeeping is bypassed.
    """
    p = q = m = None
    if plan.needs_workspace:
        if workspace is None:
            raise ShapeError(f"plan {plan.key} requires a workspace "
                             f"({plan.requirement}) but none was supplied")
        p, q, m = workspace.flat_buffers()

    for step in plan.steps:
        run_step(step, a, b, c, p, q, m, alpha)

    record_plan_counters(plan, a.dtype.itemsize)
    return c
