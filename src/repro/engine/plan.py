"""Plan compilation: walk a recursion once, emit a flat execution plan.

The recursive algorithms in :mod:`repro.core` re-derive the same structure
on every call: quadrant partitions, cache-fit checks and workspace offsets
depend only on ``(shape, cache model, config)``, never on the matrix
*values*.  This module performs that walk exactly once and records the
result as an immutable :class:`ExecutionPlan` — an ordered tuple of
base-case kernel steps whose operands are precomputed views (slices of the
``A``/``C`` operands or ``(offset, shape)`` windows into the pooled
workspace arenas), plus the exact workspace requirement and pre-aggregated
flop/byte counter totals.

Executing a plan replays the identical kernel sequence the recursion would
have produced, so results are bit-for-bit equal to the direct calls; only
the Python-level recursion overhead, the per-call workspace allocation and
the per-kernel counter bookkeeping are amortised away.

Four algorithm kinds can be compiled:

``"syrk"``
    A single base-case ``syrk`` call (used when the operand fits in cache).
``"ata"``
    Algorithm 1 — the AtA recursion with its embedded FastStrassen calls,
    fully flattened including the Strassen workspace choreography.
``"strassen"``
    A standalone FastStrassen ``A^T B`` product.
``"recursive_gemm"``
    Algorithm 2 — the classical 8-way recursive ``A^T B``.
``"tiled"``
    A cache-sized column-block tiling of the lower triangle of ``A^T A``
    (``syrk`` diagonal blocks, ``gemm_t`` off-diagonal panels).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..blas.kernels import gemm_flops, syrk_flops
from ..cache.model import CacheModel
from ..config import get_config
from ..core.partition import split_dim
from ..core.strassen import STRASSEN_PRODUCTS
from ..core.workspace import _Requirement
from ..errors import ShapeError

__all__ = ["ExecutionPlan", "compile_plan", "execute_plan", "PLAN_KINDS"]

PLAN_KINDS = ("syrk", "ata", "strassen", "recursive_gemm", "tiled")

# Operand bases (first element of a frozen operand reference).
_BASE_A = 0
_BASE_B = 1
_BASE_C = 2
_ARENA_P = 3
_ARENA_Q = 4
_ARENA_M = 5

# Step opcodes (first element of a frozen step tuple).
OP_SYRK = 0   # (OP_SYRK, a_ref, c_ref, n)               c[tril(n)] += alpha*(a.T@a)[tril(n)]
OP_GEMM = 1   # (OP_GEMM, a_ref, b_ref, c_ref, use_alpha) c += coef * a.T @ b
OP_ADD = 2    # (OP_ADD, dst_ref, src_ref, coef, use_alpha) dst += coef*src (prefix-truncated)
OP_ZERO = 3   # (OP_ZERO, ref)                            view[...] = 0


class _Region:
    """A rectangular window into an operand or arena matrix (compile time).

    ``base`` identifies the storage (``A``/``B``/``C`` operand or one of the
    P/Q/M arenas); ``start`` is the flat arena offset of the base matrix
    (arenas only) and ``(base_rows, base_cols)`` its shape; ``(r0, r1, c0,
    c1)`` bound this window inside the base matrix.
    """

    __slots__ = ("base", "start", "base_rows", "base_cols", "r0", "r1", "c0", "c1")

    def __init__(self, base, start, base_rows, base_cols, r0, r1, c0, c1):
        self.base = base
        self.start = start
        self.base_rows = base_rows
        self.base_cols = base_cols
        self.r0, self.r1, self.c0, self.c1 = r0, r1, c0, c1

    @classmethod
    def whole(cls, base: int, rows: int, cols: int, start: int = 0) -> "_Region":
        return cls(base, start, rows, cols, 0, rows, 0, cols)

    @property
    def rows(self) -> int:
        return self.r1 - self.r0

    @property
    def cols(self) -> int:
        return self.c1 - self.c0

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def sub(self, r0: int, r1: int, c0: int, c1: int) -> "_Region":
        """Window relative to this region (like ``view[r0:r1, c0:c1]``)."""
        return _Region(self.base, self.start, self.base_rows, self.base_cols,
                       self.r0 + r0, self.r0 + r1, self.c0 + c0, self.c0 + c1)

    def quadrants(self) -> Tuple["_Region", "_Region", "_Region", "_Region"]:
        """The four ceil/floor quadrants of Eq. (1), as regions."""
        m1, _ = split_dim(self.rows)
        n1, _ = split_dim(self.cols)
        m, n = self.rows, self.cols
        return (self.sub(0, m1, 0, n1), self.sub(0, m1, n1, n),
                self.sub(m1, m, 0, n1), self.sub(m1, m, n1, n))

    def limit_rows(self, count: int) -> "_Region":
        return self.sub(0, count, 0, self.cols)

    def freeze(self):
        """The compact runtime reference the executor resolves per step."""
        if self.base in (_BASE_A, _BASE_B, _BASE_C):
            return (self.base, (slice(self.r0, self.r1), slice(self.c0, self.c1)))
        stop = self.start + self.base_rows * self.base_cols
        full = (self.r0 == 0 and self.r1 == self.base_rows
                and self.c0 == 0 and self.c1 == self.base_cols)
        window = None if full else (slice(self.r0, self.r1), slice(self.c0, self.c1))
        return (self.base, self.start, stop, self.base_rows, self.base_cols, window)


class _SimArena:
    """Compile-time mirror of :class:`repro.core.workspace.Arena`.

    Tracks offsets with the same LIFO discipline so that the frozen
    references point exactly where the live recursion would have placed its
    scratch, and records the high-water mark that sizes the pooled arena.
    """

    def __init__(self, base: int) -> None:
        self.base = base
        self.offset = 0
        self.high_water = 0
        self._stack: List[Tuple[int, int]] = []

    def allocate(self, rows: int, cols: int) -> _Region:
        region = _Region.whole(self.base, rows, cols, start=self.offset)
        self._stack.append((self.offset, rows * cols))
        self.offset += rows * cols
        self.high_water = max(self.high_water, self.offset)
        return region

    def release(self, region: _Region) -> None:
        start, need = self._stack.pop()
        assert start == region.start and need == region.base_rows * region.base_cols
        self.offset = start


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """An immutable compiled execution plan.

    Attributes
    ----------
    key:
        The cache key the plan was compiled under (see
        :mod:`repro.engine` for the plan-key contract).
    algo:
        One of :data:`PLAN_KINDS`.
    shape:
        Problem shape: ``(m, n)`` for A^T A kinds, ``(m, n, k)`` for A^T B.
    out_shape:
        Shape of the output matrix ``C``.
    dtype:
        Operand dtype the plan was compiled for.
    steps:
        The ordered kernel steps (opaque tuples consumed by
        :func:`execute_plan`).
    requirement:
        Exact per-arena workspace requirement, or ``None`` when the plan
        needs no scratch space.
    ws_shape:
        The ``(m, n, k)`` sizing triple a replacement
        :class:`~repro.core.workspace.StrassenWorkspace` would be built
        with (used by the pool on a miss).
    kernel_counters:
        Pre-aggregated ``(category, calls, flops, byte_elements)`` totals;
        recorded when ``config.count_flops`` is on.  ``byte_elements`` is
        multiplied by the dtype itemsize at execution time.
    step_counters:
        ``(category, calls)`` recursion-step totals recorded
        unconditionally, mirroring ``counters.record`` in the recursions.
    """

    key: tuple
    algo: str
    shape: Tuple[int, ...]
    out_shape: Tuple[int, int]
    dtype: np.dtype
    steps: Tuple[tuple, ...]
    requirement: Optional[_Requirement]
    ws_shape: Optional[Tuple[int, int, int]]
    kernel_counters: Tuple[Tuple[str, int, int, int], ...]
    step_counters: Tuple[Tuple[str, int], ...]

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def needs_workspace(self) -> bool:
        return self.requirement is not None


class _Compiler:
    """Shared state for one compilation walk."""

    def __init__(self, model: CacheModel) -> None:
        self.model = model
        self.max_depth = get_config().max_recursion_depth
        self.steps: List[tuple] = []
        self.kernel_totals: Dict[str, List[int]] = {}
        self.step_totals: Dict[str, int] = {}
        self.p = _SimArena(_ARENA_P)
        self.q = _SimArena(_ARENA_Q)
        self.m = _SimArena(_ARENA_M)

    # -- counter aggregation ----------------------------------------------
    def _count(self, category: str, flops: int, byte_elements: int) -> None:
        tot = self.kernel_totals.setdefault(category, [0, 0, 0])
        tot[0] += 1
        tot[1] += flops
        tot[2] += byte_elements

    def _count_step(self, category: str) -> None:
        self.step_totals[category] = self.step_totals.get(category, 0) + 1

    # -- step emission ------------------------------------------------------
    def emit_syrk(self, a: _Region, c: _Region) -> None:
        m, n = a.rows, a.cols
        # plans carry only the triangle size; the O(n^2) index arrays are
        # materialised lazily in a bounded shared cache at execution time,
        # so a wide single-syrk plan does not pin megabytes in the LRU
        self.steps.append((OP_SYRK, a.freeze(), c.freeze(), n))
        self._count("syrk", syrk_flops(m, n), m * n + n * (n + 1) // 2)

    def emit_gemm(self, a: _Region, b: _Region, c: _Region, use_alpha: bool) -> None:
        m, n, k = a.rows, a.cols, b.cols
        self.steps.append((OP_GEMM, a.freeze(), b.freeze(), c.freeze(), use_alpha))
        self._count("gemm", gemm_flops(m, n, k), m * n + m * k + n * k)

    def emit_add(self, dst: _Region, src: _Region, coef: float, use_alpha: bool) -> None:
        # add_into adds over the overlapping top-left block; truncate both
        # references to that overlap at compile time.
        rows = min(dst.rows, src.rows)
        cols = min(dst.cols, src.cols)
        if rows == 0 or cols == 0:
            return
        self.steps.append((OP_ADD, dst.sub(0, rows, 0, cols).freeze(),
                           src.sub(0, rows, 0, cols).freeze(), float(coef), use_alpha))
        self._count("axpy", 2 * rows * cols, 3 * rows * cols)

    def emit_zero(self, region: _Region) -> None:
        self.steps.append((OP_ZERO, region.freeze()))

    # -- FastStrassen (mirrors core.strassen._strassen) ---------------------
    def _combine(self, terms, arena: _SimArena):
        """Compile-time analogue of ``strassen._combine``."""
        if len(terms) == 1 and terms[0][1] == 1:
            return terms[0][0], False
        rows = max(t[0].rows for t in terms)
        cols = max(t[0].cols for t in terms)
        buf = arena.allocate(rows, cols)
        self.emit_zero(buf)
        for region, sign in terms:
            if region.size:
                self.emit_add(buf, region, float(sign), False)
        return buf, True

    def strassen(self, a: _Region, b: _Region, c: _Region,
                 use_alpha: bool, depth: int) -> None:
        m, n = a.rows, a.cols
        k = b.cols
        if m == 0 or n == 0 or k == 0:
            return
        if self.model.fits_gemm(m, n, k) or (m <= 1 and n <= 1 and k <= 1):
            self.emit_gemm(a, b, c, use_alpha)
            return
        if depth > self.max_depth:
            raise ShapeError("Strassen recursion exceeded max_recursion_depth; "
                             "check the base-case configuration")
        self._count_step("strassen_step")

        a_q = dict(zip(("11", "12", "21", "22"), a.quadrants()))
        b_q = dict(zip(("11", "12", "21", "22"), b.quadrants()))
        c_q = dict(zip(("11", "12", "21", "22"), c.quadrants()))

        for spec in STRASSEN_PRODUCTS:
            a_terms = [(a_q[qd], s) for qd, s in spec["a"]]
            b_terms = [(b_q[qd], s) for qd, s in spec["b"]]
            a_op, a_owned = self._combine(a_terms, self.p)
            b_op, b_owned = self._combine(b_terms, self.q)
            m_eff = min(a_op.rows, b_op.rows)
            prod = self.m.allocate(a_op.cols, b_op.cols)
            self.emit_zero(prod)
            if m_eff:
                self.strassen(a_op.limit_rows(m_eff), b_op.limit_rows(m_eff),
                              prod, False, depth + 1)
            for target, sign in spec["c"]:
                tgt = c_q[target]
                if tgt.size and prod.size:
                    self.emit_add(tgt, prod, float(sign), use_alpha)
            self.m.release(prod)
            if b_owned:
                self.q.release(b_op)
            if a_owned:
                self.p.release(a_op)

    # -- AtA (mirrors core.ata._ata_recurse) --------------------------------
    def ata(self, a: _Region, c: _Region, depth: int) -> None:
        m, n = a.rows, a.cols
        if m == 0 or n == 0:
            return
        if self.model.fits_ata(m, n) or (m <= 1 and n <= 1):
            self.emit_syrk(a, c)
            return
        if depth > self.max_depth:
            raise ShapeError("AtA recursion exceeded max_recursion_depth; "
                             "check the base-case configuration")
        self._count_step("ata_step")

        a11, a12, a21, a22 = a.quadrants()
        n1, _ = split_dim(n)
        c11 = c.sub(0, n1, 0, n1)
        c22 = c.sub(n1, n, n1, n)
        c21 = c.sub(n1, n, 0, n1)

        self.ata(a11, c11, depth + 1)
        if a21.size:
            self.ata(a21, c11, depth + 1)
        if a12.size:
            self.ata(a12, c22, depth + 1)
        if a22.size:
            self.ata(a22, c22, depth + 1)

        if c21.size:
            if a12.size and a11.size:
                self.strassen(a12, a11, c21, True, depth + 1)
            if a22.size and a21.size:
                self.strassen(a22, a21, c21, True, depth + 1)

    # -- RecursiveGEMM (mirrors core.recursive_gemm._recurse) ----------------
    def recursive_gemm(self, a: _Region, b: _Region, c: _Region, depth: int) -> None:
        m, n = a.rows, a.cols
        k = b.cols
        if m == 0 or n == 0 or k == 0:
            return
        if self.model.fits_gemm(m, n, k) or (m <= 1 and n <= 1 and k <= 1):
            self.emit_gemm(a, b, c, True)
            return
        if depth > self.max_depth:
            raise ShapeError("RecursiveGEMM exceeded max_recursion_depth; "
                             "check the base-case configuration")
        self._count_step("recursive_gemm_step")

        a_q = dict(zip(("11", "12", "21", "22"), a.quadrants()))
        b_q = dict(zip(("11", "12", "21", "22"), b.quadrants()))
        c_q = dict(zip(("11", "12", "21", "22"), c.quadrants()))
        for i in (1, 2):
            for j in (1, 2):
                for l in (1, 2):
                    a_block = a_q[f"{l}{i}"]
                    b_block = b_q[f"{l}{j}"]
                    c_block = c_q[f"{i}{j}"]
                    if a_block.size == 0 or b_block.size == 0 or c_block.size == 0:
                        continue
                    self.recursive_gemm(a_block, b_block, c_block, depth + 1)

    # -- tiled AtA -----------------------------------------------------------
    def tiled_ata(self, a: _Region, c: _Region) -> None:
        m, n = a.rows, a.cols
        tile = max(1, min(n, self.model.capacity_words // max(1, 2 * m)))
        bounds = [(j, min(j + tile, n)) for j in range(0, n, tile)]
        for bi, (i0, i1) in enumerate(bounds):
            for bj, (j0, j1) in enumerate(bounds[:bi + 1]):
                if bi == bj:
                    self.emit_syrk(a.sub(0, m, i0, i1), c.sub(i0, i1, i0, i1))
                else:
                    self.emit_gemm(a.sub(0, m, i0, i1), a.sub(0, m, j0, j1),
                                   c.sub(i0, i1, j0, j1), True)

    # -- finalisation --------------------------------------------------------
    def finish(self, key: tuple, algo: str, shape: Tuple[int, ...],
               out_shape: Tuple[int, int], dtype,
               ws_shape: Optional[Tuple[int, int, int]]) -> ExecutionPlan:
        needs_ws = self.p.high_water or self.q.high_water or self.m.high_water
        requirement = None
        if needs_ws:
            requirement = _Requirement(p_elements=self.p.high_water,
                                       q_elements=self.q.high_water,
                                       m_elements=self.m.high_water,
                                       depth=0)
        return ExecutionPlan(
            key=key, algo=algo, shape=shape, out_shape=out_shape,
            dtype=np.dtype(dtype), steps=tuple(self.steps),
            requirement=requirement,
            ws_shape=ws_shape if needs_ws else None,
            kernel_counters=tuple((cat, t[0], t[1], t[2])
                                  for cat, t in self.kernel_totals.items()),
            step_counters=tuple(self.step_totals.items()),
        )


def compile_plan(algo: str, shape: Tuple[int, ...], dtype, model: CacheModel,
                 key: Optional[tuple] = None) -> ExecutionPlan:
    """Compile one execution plan.

    Parameters
    ----------
    algo:
        One of :data:`PLAN_KINDS`.
    shape:
        ``(m, n)`` for the A^T A kinds (``syrk``/``ata``/``tiled``),
        ``(m, n, k)`` for the A^T B kinds (``strassen``/``recursive_gemm``).
    dtype:
        Operand dtype (affects only the workspace the plan will request).
    model:
        The :class:`~repro.cache.model.CacheModel` providing the base-case
        predicates; the walk consults it exactly as the live recursion
        would.
    key:
        The cache key to stamp on the plan (defaults to a local tuple).
    """
    if algo not in PLAN_KINDS:
        raise ShapeError(f"unknown plan kind {algo!r}; expected one of {PLAN_KINDS}")
    comp = _Compiler(model)
    if algo in ("syrk", "ata", "tiled"):
        m, n = shape
        a = _Region.whole(_BASE_A, m, n)
        c = _Region.whole(_BASE_C, n, n)
        out_shape = (n, n)
        ws_shape: Optional[Tuple[int, int, int]] = None
        if algo == "tiled":
            comp.tiled_ata(a, c)
        elif algo == "syrk" or comp.model.fits_ata(m, n) or (m <= 1 and n <= 1):
            # ata() short-circuits to a single syrk call on fitting shapes.
            comp.emit_syrk(a, c)
        else:
            m1, _ = split_dim(m)
            n1, _ = split_dim(n)
            ws_shape = (m1, n1, n1)
            comp.ata(a, c, depth=0)
    else:
        m, n, k = shape
        a = _Region.whole(_BASE_A, m, n)
        b = _Region.whole(_BASE_B, m, k)
        c = _Region.whole(_BASE_C, n, k)
        out_shape = (n, k)
        ws_shape = (m, n, k)
        if comp.model.fits_gemm(m, n, k) or (m <= 1 and n <= 1 and k <= 1):
            comp.emit_gemm(a, b, c, True)
        elif algo == "strassen":
            comp.strassen(a, b, c, True, depth=0)
        else:
            comp.recursive_gemm(a, b, c, depth=0)
    if key is None:
        key = (algo, shape, np.dtype(dtype).str, model.capacity_words)
    return comp.finish(key, algo, tuple(shape), out_shape, dtype, ws_shape)


#: Shared cache of np.tril_indices results keyed by n, bounded both in
#: entry count and in per-entry size: a triangle larger than
#: _TRIL_CACHE_MAX_N is computed transiently (exactly what the direct syrk
#: kernel does on every call) instead of being pinned in process memory.
_TRIL_CACHE: Dict[int, tuple] = {}
_TRIL_CACHE_MAX = 64
_TRIL_CACHE_MAX_N = 1024  # ~8 MB of int64 indices per entry at the cap


def _tril_indices(n: int) -> tuple:
    if n > _TRIL_CACHE_MAX_N:
        return np.tril_indices(n)
    idx = _TRIL_CACHE.get(n)
    if idx is None:
        idx = np.tril_indices(n)
        if len(_TRIL_CACHE) >= _TRIL_CACHE_MAX:
            try:
                _TRIL_CACHE.pop(next(iter(_TRIL_CACHE)), None)
            except (StopIteration, RuntimeError):  # concurrent mutation
                pass
        _TRIL_CACHE[n] = idx
    return idx


def _resolve(ref, a, b, c, p, q, m):
    """Materialise a frozen operand reference into a live numpy view."""
    base = ref[0]
    if base == _BASE_A:
        return a[ref[1]]
    if base == _BASE_B:
        return b[ref[1]]
    if base == _BASE_C:
        return c[ref[1]]
    buf = p if base == _ARENA_P else q if base == _ARENA_Q else m
    view = buf[ref[1]:ref[2]].reshape(ref[3], ref[4])
    window = ref[5]
    return view if window is None else view[window]


def execute_plan(plan: ExecutionPlan, a: np.ndarray, c: np.ndarray,
                 alpha: float = 1.0, workspace=None,
                 b: Optional[np.ndarray] = None) -> np.ndarray:
    """Replay a compiled plan on concrete operands.

    The step expressions reproduce the base-case kernels of
    :mod:`repro.blas.kernels` exactly (same numpy expressions, same
    ``alpha == 1.0`` short-circuits), so the result is bit-for-bit
    identical to running the original recursion; validation and counter
    bookkeeping are hoisted out of the per-step loop.

    Parameters
    ----------
    plan:
        The compiled :class:`ExecutionPlan`.
    a, b, c:
        Operands; ``b`` is required for the A^T B kinds and must be ``None``
        otherwise.
    alpha:
        The runtime scalar the plan's symbolic alpha resolves to.
    workspace:
        A :class:`~repro.core.workspace.StrassenWorkspace` whose arenas are
        at least as large as ``plan.requirement`` (only when
        ``plan.needs_workspace``).  The plan addresses the arenas by raw
        offset, so the workspace's own stack bookkeeping is bypassed.
    """
    from ..blas import counters  # local import to keep module import light

    p = q = m = None
    if plan.needs_workspace:
        if workspace is None:
            raise ShapeError(f"plan {plan.key} requires a workspace "
                             f"({plan.requirement}) but none was supplied")
        p, q, m = workspace.flat_buffers()

    for step in plan.steps:
        op = step[0]
        if op == OP_GEMM:
            av = _resolve(step[1], a, b, c, p, q, m)
            bv = _resolve(step[2], a, b, c, p, q, m)
            cv = _resolve(step[3], a, b, c, p, q, m)
            coef = alpha if step[4] else 1.0
            if coef == 1.0:
                cv += av.T @ bv
            else:
                cv += coef * (av.T @ bv)
        elif op == OP_ADD:
            dst = _resolve(step[1], a, b, c, p, q, m)
            src = _resolve(step[2], a, b, c, p, q, m)
            coef = step[3] * (alpha if step[4] else 1.0)
            if coef == 1.0:
                dst += src
            else:
                dst += coef * src
        elif op == OP_SYRK:
            av = _resolve(step[1], a, b, c, p, q, m)
            cv = _resolve(step[2], a, b, c, p, q, m)
            idx = _tril_indices(step[3])
            product = av.T @ av
            cv[idx] += alpha * product[idx]
        else:  # OP_ZERO
            _resolve(step[1], a, b, c, p, q, m)[...] = 0

    if get_config().count_flops and plan.kernel_counters:
        itemsize = a.dtype.itemsize
        for category, calls, flops, byte_elements in plan.kernel_counters:
            counters.record(category, flops=flops,
                            bytes=byte_elements * itemsize, calls=calls)
    for category, calls in plan.step_counters:
        counters.record(category, calls=calls)
    return c
