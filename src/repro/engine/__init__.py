"""Plan-compiling execution engine for the AtA algorithm family.

The recursive algorithms of :mod:`repro.core` derive the *same* structure
on every invocation: for a fixed problem shape and configuration, the
quadrant partitions, cache-fit decisions, base-case kernel sequence and
workspace layout never change — only the matrix values do.  This package
amortises that derivation across calls, which is the substrate the
production-scaling roadmap (batched serving, sharding, multi-backend
dispatch) builds on:

* :mod:`repro.engine.plan` — the **plan compiler** walks a recursion once
  and emits an immutable :class:`~repro.engine.plan.ExecutionPlan`: the
  ordered base-case kernel calls with precomputed operand views and
  workspace offsets, the exact workspace requirement, and pre-aggregated
  flop/byte counter totals;
* :mod:`repro.engine.cache` — an **LRU plan cache** with hit/miss
  accounting and whole-cache invalidation when :mod:`repro.config`
  changes;
* :mod:`repro.engine.pool` — a **workspace pool** reusing
  :class:`~repro.core.workspace.StrassenWorkspace` arenas across calls
  instead of reallocating them;
* :mod:`repro.engine.dag` — the **DAG executor**: the compiler also
  derives each plan's step dependency graph (conflicting steps carry a
  forward edge; disjoint steps carry none), and
  :class:`~repro.engine.dag.DagExecutor` schedules ready steps across a
  persistent worker pool — bit-identically to the sequential replay,
  because conflicting steps (in particular accumulation chains into a
  shared output region) retire in plan order under any worker count;
* :mod:`repro.engine.backends` — the **backend registry**: every
  execution path (``syrk`` / ``ata`` / ``tiled`` / ``recursive_gemm`` /
  ``strassen`` plan backends, plus the ``blas_direct`` vendor-BLAS
  backend where bindable) is a registered
  :class:`~repro.engine.backends.Backend` with ``supports``/``cost``/
  ``run`` hooks; custom backends plug in via
  :func:`~repro.engine.backends.register_backend` and are immediately
  dispatchable by name;
* :mod:`repro.engine.tuner` — the **measured auto-tuner**:
  :class:`~repro.engine.tuner.BackendTuner` feeds a per-(shape-bucket,
  dtype) timing table from real executions, explores under-sampled
  backends within a bounded budget, then dispatches ``algo="auto"``
  traffic to the measured-fastest backend; the table persists as JSON
  with config-fingerprint invalidation mirroring the plan cache;
* :mod:`repro.engine.ooc` — the **out-of-core executor**:
  :class:`~repro.engine.ooc.ShardedAtA` streams row panels of inputs
  that exceed memory (arrays, ``np.memmap``, chunk streams) through the
  engine under a byte budget (``Config.memory_budget`` /
  ``REPRO_MEMORY_BUDGET``), accumulating ``C += A_p^T A_p`` in a
  deterministic fixed panel order with an optional double-buffered
  prefetch thread; each panel is an ordinary engine call, so plans,
  pooled workspaces and the tuner amortise at panel granularity;
* :mod:`repro.engine.farm` — the **multi-process panel farm**:
  :class:`~repro.engine.farm.PanelFarm` fans the same panel schedule out
  to worker processes over ``multiprocessing.shared_memory`` arenas
  (``run_ooc(procs=N)`` / ``Config.farm_procs``); each worker runs the
  full engine stack on its panel and the parent folds the partial Grams
  through a fixed ascending reduction tree, so the result is
  bit-identical across worker counts; worker sizing follows the
  affinity-aware :func:`~repro.engine.cpu.available_cpus`;
* :mod:`repro.engine.dispatch` — the **front-end**:
  :func:`~repro.engine.dispatch.matmul_ata` resolves each request
  through explicit ``algo=`` > ``Config.backend``/``REPRO_BACKEND`` >
  measured tuner > modeled-cost heuristic,
  :func:`~repro.engine.dispatch.run_batch` /
  :func:`~repro.engine.dispatch.run_batch_atb` execute a homogeneous batch
  against a single compiled plan and checked-out workspace, and
  ``ExecutionEngine(workers=N)`` turns on DAG scheduling
  (``parallel="auto"|"dag"|"off"``).

The asyncio serving layer (:mod:`repro.serve`) sits on top of this
package: a :class:`~repro.serve.Server` coalesces concurrent clients'
requests into the batch entry points so they share one warm plan cache,
workspace pool and tuner table.

The plan-key contract
---------------------
A compiled plan is a pure function of its key::

    (backend, plan_kind, shape, dtype.str, cache_model.capacity_words,
     cache_model.line_words, scratch_lanes, fused)

The key leads with the **backend id** so two backends compiling the same
plan kind (possible for registered custom backends) can never collide in
the cache.  A plan additionally depends on the *plan-affecting
configuration fields* ``base_case_elements``, ``max_recursion_depth`` and
the ``fuse`` mode.  Those fields are deliberately **not** in the key;
instead the plan cache fingerprints them and drops every cached plan the
first time it observes a change (see
:class:`~repro.engine.cache.PlanCache`).  ``scratch_lanes`` is in the key
because it changes the workspace layout the plan's arena offsets are baked
against (sequential engines use one lane; DAG-capable engines spread
scratch over ``min(workers, 4)`` lanes by default).  ``fused`` is in the
key because the compiler's fusion pass (see
:class:`~repro.engine.plan.FusedStep` and :mod:`repro.engine.codegen`)
produces a structurally different step sequence for the same recursion: a
fused and an unfused compilation of one shape must never alias — the
per-plan flag keeps them apart even within one config fingerprint, which
is what lets the measured tuner arbitrate fused-vs-unfused per shape
bucket.  Anything else — matrix values, ``alpha``/``beta``, counter
settings, worker count — is resolved at execution time, so a cached plan
can never go stale through it.  Executing a plan replays the exact kernel
sequence of the live recursion, making engine results bit-for-bit
identical to the direct calls — sequentially, DAG-scheduled, fused, or
batch-interleaved.

Quickstart
----------
>>> import numpy as np
>>> from repro.engine import matmul_ata, run_batch
>>> a = np.random.default_rng(0).standard_normal((300, 200))
>>> c = matmul_ata(a)                  # cold call: compiles + caches the plan
>>> c2 = matmul_ata(a)                 # warm call: cached plan, pooled workspace
>>> cs = run_batch([a, a, a])          # one plan, one workspace, three results
"""

from .backends import (
    Backend,
    BlasDirectBackend,
    PlanBackend,
    backend_names,
    backends_for,
    choose_heuristic,
    get_backend,
    register_backend,
    unregister_backend,
)
from .cache import PlanCache
from .cpu import available_cpus
from .dag import DagExecutor, DagRunStats
from .farm import FarmRunStats, PanelFarm, run_farm
from .dispatch import (
    EngineStats,
    ExecutionEngine,
    default_engine,
    matmul_ata,
    matmul_atb,
    run_batch,
    run_batch_atb,
)
from .ooc import (
    ArraySource,
    ChunkSource,
    MemmapSource,
    OocRunStats,
    ShardedAtA,
    SparseChunkSource,
    SparseSource,
    as_source,
    matmul_ata_ooc,
    run_ooc,
)
from .plan import (
    ExecutionPlan,
    FusedStep,
    StepDag,
    compile_plan,
    execute_plan,
    split_rows,
    PLAN_KINDS,
)
from .pool import WorkspacePool
from .sparse import (
    HAVE_SCIPY,
    LowRank,
    SPARSE_BACKENDS,
    density_bucket,
    is_sparse,
    operand_kind,
)
from .tuner import BackendTuner, default_tuner_path, shape_bucket

__all__ = [
    "ExecutionEngine",
    "EngineStats",
    "ExecutionPlan",
    "FusedStep",
    "StepDag",
    "DagExecutor",
    "DagRunStats",
    "PlanCache",
    "WorkspacePool",
    "PLAN_KINDS",
    "Backend",
    "PlanBackend",
    "BlasDirectBackend",
    "BackendTuner",
    "backend_names",
    "backends_for",
    "choose_heuristic",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "default_tuner_path",
    "shape_bucket",
    "compile_plan",
    "execute_plan",
    "split_rows",
    "default_engine",
    "matmul_ata",
    "matmul_atb",
    "run_batch",
    "run_batch_atb",
    "ShardedAtA",
    "OocRunStats",
    "ArraySource",
    "MemmapSource",
    "ChunkSource",
    "SparseSource",
    "SparseChunkSource",
    "as_source",
    "matmul_ata_ooc",
    "run_ooc",
    "PanelFarm",
    "FarmRunStats",
    "run_farm",
    "available_cpus",
    "HAVE_SCIPY",
    "LowRank",
    "SPARSE_BACKENDS",
    "density_bucket",
    "is_sparse",
    "operand_kind",
]
