"""Sparse and structured operands for the AtA / A^T B engine.

Every path in the engine historically assumed dense ndarrays, but real
Gram/covariance traffic is frequently sparse or structured — graph
Laplacians, incidence matrices, low-rank factors.  This module makes
those operands first class without perturbing the dense stack:

* :func:`operand_kind` classifies an operand (``"dense"`` /
  ``"sparse"`` / ``"lowrank"``); dense requests flow through dispatch
  exactly as before (bit-identical — the sparse backends declare
  ``operands = {"sparse"}`` etc. and vanish from dense candidate sets);
* four registry backends serve the structured kinds:

  ``sparse_gram``
      scipy's sparse ``A^T A`` (and ``A^T B``), with the sparse Gram
      canonicalised — duplicates summed, indices sorted, CSR — before
      its lower triangle folds into the dense ``C``;
  ``densify``
      the crossover path: materialise ``A`` densely once, then run the
      modeled-cost *dense* heuristic's pick directly (plan cache,
      workspace pool and all).  Which side of the sparse-vs-densify
      crossover wins is a property of the data's density *and the
      machine* — exactly the lesson the measured
      :class:`~repro.engine.tuner.BackendTuner` embodies — so dispatch
      extends the tuner key with a :func:`density_bucket` dimension and
      lets measured timings arbitrate per (op, dtype, density-bucket,
      shape-bucket);
  ``banded_ata``
      a structured fast path for ``scipy.sparse.dia_matrix`` operands:
      the Gram of a matrix with ``nd`` stored diagonals touches only
      ``nd``\\ ² diagonal pairs, each a vectorised elementwise product —
      ``O(nd² · n)`` with no sparse intermediate at all;
  ``lowrank_gram``
      ``A = U Vᵀ`` (a :class:`LowRank` operand) never materialises
      ``A``: ``AᵀA = V (UᵀU) Vᵀ`` costs ``O(mr² + n²r)`` and needs no
      scipy — the one structured backend that stays available without
      it.

Absence contract
----------------
scipy is **optional** here (the engine core never imports it eagerly):
without it :data:`HAVE_SCIPY` is ``False``, :func:`is_sparse` returns
``False`` for everything, the scipy-backed backends report
``supports() == False`` and drop out of every candidate set, and dense
dispatch is bit-identical to a build that never loaded this module.
The CI ``no-scipy`` lane asserts exactly that.

Accuracy contract
-----------------
Each structured backend is deterministic — repeated calls on identical
operands are bit-identical (``np.array_equal``).  *Across* paths the
contract is numerical, not bitwise: a sparse Gram, a banded Gram, the
low-rank factorisation and the densified dense kernels each order their
floating-point sums differently, so results agree to ``np.allclose``
with tolerances scaled for the accumulation depth (the test suite pins
``rtol = 1e-4`` for float32 and ``1e-10`` for float64 against the
densified reference), mirroring the caveat the ooc panel sum already
documents for differently-associated reductions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..blas.kernels import gemm_flops, syrk_flops
from ..errors import DTypeError, ShapeError
from .backends import Backend, choose_heuristic, register_backend

try:  # optional: the engine core must import clean without scipy
    import scipy.sparse as _sps
except Exception:  # pragma: no cover - environment-dependent
    _sps = None

__all__ = ["HAVE_SCIPY", "is_sparse", "operand_kind", "density",
           "density_bucket", "operand_nnz", "validate_operand", "LowRank",
           "SparseGramBackend", "DensifyBackend", "BandedAtaBackend",
           "LowRankGramBackend", "SPARSE_BACKENDS"]

HAVE_SCIPY = _sps is not None

#: names of the structured-operand backends this module registers
SPARSE_BACKENDS = ("sparse_gram", "densify", "banded_ata", "lowrank_gram")


def is_sparse(a) -> bool:
    """Whether ``a`` is a scipy sparse matrix (``False`` without scipy —
    nothing can *be* sparse where scipy cannot construct it)."""
    return HAVE_SCIPY and _sps.issparse(a)


class LowRank:
    """A low-rank operand ``A = U Vᵀ`` held as its factors.

    ``u`` is ``(m, r)`` and ``v`` is ``(n, r)``; the represented matrix
    is ``(m, n)`` but is never materialised by the ``lowrank_gram``
    backend (``AᵀA = V (UᵀU) Vᵀ``).  Needs no scipy.
    """

    def __init__(self, u: np.ndarray, v: np.ndarray) -> None:
        for name, factor in (("U", u), ("V", v)):
            if not isinstance(factor, np.ndarray):
                raise DTypeError(f"LowRank {name} must be a numpy.ndarray, "
                                 f"got {type(factor).__name__}")
            if factor.ndim != 2:
                raise ShapeError(f"LowRank {name} must be 2-dimensional, "
                                 f"got shape {factor.shape}")
            if factor.dtype.kind not in ("f", "c"):
                raise DTypeError(f"LowRank {name} must have a floating "
                                 f"dtype, got {factor.dtype}")
        if u.shape[1] != v.shape[1]:
            raise ShapeError("LowRank factors must share a rank, got "
                             f"U {u.shape} and V {v.shape}")
        if u.dtype != v.dtype:
            raise DTypeError("LowRank factors must share a dtype, got "
                             f"{u.dtype} and {v.dtype}")
        self.u = u
        self.v = v
        self.shape: Tuple[int, int] = (u.shape[0], v.shape[0])
        self.dtype = u.dtype
        self.rank = int(u.shape[1])

    @property
    def nnz(self) -> int:
        """Stored elements (the factors' — what the stats meter)."""
        return int(self.u.size + self.v.size)

    def toarray(self) -> np.ndarray:
        """Materialise ``U Vᵀ`` (reference/testing; backends never do)."""
        return self.u @ self.v.T

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"LowRank(shape={self.shape}, rank={self.rank}, "
                f"dtype={self.dtype})")


def operand_kind(a) -> str:
    """Classify an operand: ``"sparse"`` (scipy), ``"lowrank"``
    (:class:`LowRank`) or ``"dense"`` (everything else — dense
    validation rejects non-arrays downstream exactly as before)."""
    if is_sparse(a):
        return "sparse"
    if isinstance(a, LowRank):
        return "lowrank"
    return "dense"


def operand_nnz(a) -> int:
    """Stored entries of a structured operand (dense: the full size)."""
    nnz = getattr(a, "nnz", None)
    if nnz is not None:
        return int(nnz)
    return int(np.asarray(a).size)


def validate_operand(a, name: str = "A") -> None:
    """Structural validation of a sparse/low-rank operand — the
    counterpart of :func:`repro.blas.kernels.validate_matrix`, which
    (deliberately) still rejects anything that is not an ndarray."""
    if len(a.shape) != 2:
        raise ShapeError(f"{name} must be 2-dimensional, got shape {a.shape}")
    if np.dtype(a.dtype).kind not in ("f", "c"):
        raise DTypeError(f"{name} must have a floating dtype, got {a.dtype}")


def density(a) -> float:
    """Stored-entry fraction ``nnz / (m * n)`` of a structured operand."""
    m, n = a.shape
    if m < 1 or n < 1:
        return 0.0
    return operand_nnz(a) / float(m * n)


def density_bucket(a) -> Optional[str]:
    """Power-of-two density bucket for the tuner key, e.g. ``"d2^-4"``
    for densities in ``(2^-5, 2^-4]``.

    The measured sparse-vs-densify crossover is a function of density,
    so tuner cells must not mix a 0.5%-dense operand's timings with a
    50%-dense one's; power-of-two buckets keep the table small the same
    way :func:`~repro.engine.tuner.shape_bucket` does for shapes.
    Dense operands return ``None`` — their tuner keys carry no density
    dimension and stay byte-identical to every table written before
    this module existed.
    """
    kind = operand_kind(a)
    if kind == "dense":
        return None
    if kind == "lowrank":
        # rank, not density, is the low-rank cost driver
        bucket = 1 << max(0, int(a.rank) - 1).bit_length()
        return f"r{bucket}"
    d = density(a)
    if d <= 0.0:
        return "d0"
    exponent = max(0, min(30, int(np.ceil(-np.log2(min(d, 1.0))))))
    return f"d2^-{exponent}"


def _fold_lower(c: np.ndarray, full: np.ndarray, alpha: float) -> None:
    """Accumulate ``alpha * full`` into ``c``'s lower triangle — the
    same fold the dense ``recursive_gemm`` oracle path uses."""
    idx = np.tril_indices(c.shape[0])
    c[idx] += alpha * full[idx]


class _StructuredBackend(Backend):
    """Shared ``supports`` logic for the scipy-backed structured paths."""

    operands = frozenset({"sparse"})

    def supports(self, op, shape, dtype, model):
        return (HAVE_SCIPY and op in self.ops
                and np.dtype(dtype).kind in ("f", "c"))


class SparseGramBackend(_StructuredBackend):
    """scipy-sparse ``A^T A`` / ``A^T B`` with canonical sparse output.

    The sparse Gram ``A.T @ A`` comes back in whatever format scipy's
    spgemm produces (CSC for CSR inputs); it is canonicalised — CSR,
    duplicates summed, indices sorted — before its lower triangle folds
    into the dense ``C``, so the intermediate every run produces is
    structurally identical and the fold is deterministic.
    """

    name = "sparse_gram"
    ops = frozenset(("ata", "atb"))

    def operand_cost(self, op, operand, shape, dtype, model):
        # spgemm work scales with Σ_rows nnz_row² ≈ nnz²/m for random
        # sparsity; atb is one sparse-dense product of 2·nnz·k flops
        nnz = operand_nnz(operand)
        if op == "ata":
            m = max(1, shape[0])
            return 2.0 * float(nnz) * float(nnz) / float(m)
        return 2.0 * float(nnz) * float(shape[2])

    def run(self, engine, op, a, c, alpha, b, model, parallel,
            held: Optional[dict] = None) -> None:
        if op == "ata":
            gram = (a.T @ a).tocsr()
            gram.sum_duplicates()
            gram.sort_indices()
            _fold_lower(c, gram.toarray(), alpha)
        else:
            c += alpha * np.asarray(a.T @ b)


class DensifyBackend(_StructuredBackend):
    """Materialise the operand densely and run the dense heuristic's pick.

    The delegate backend is chosen by the *modeled* dense heuristic and
    executed directly (no re-entrant dispatch), so a densified run uses
    the same plan cache and workspace pool as native dense traffic and
    stays deterministic.  Whether densifying beats staying sparse is the
    measured crossover the tuner arbitrates per density bucket.
    """

    name = "densify"
    ops = frozenset(("ata", "atb"))

    def operand_cost(self, op, operand, shape, dtype, model):
        dense = choose_heuristic(op, shape, dtype, model)
        convert = float(shape[0]) * float(shape[1])  # the toarray() write
        return dense.cost(op, shape, dtype, model) + convert

    def run(self, engine, op, a, c, alpha, b, model, parallel,
            held: Optional[dict] = None) -> None:
        dense = np.ascontiguousarray(a.toarray())
        backend = choose_heuristic(op, (dense.shape if op == "ata"
                                        else (dense.shape[0], dense.shape[1],
                                              b.shape[1])),
                                   dense.dtype, model)
        backend.run(engine, op, dense, c, alpha, b, model, parallel, held)


class BandedAtaBackend(_StructuredBackend):
    """Banded ``A^T A`` over ``scipy.sparse.dia_matrix`` operands.

    ``dia`` stores ``A[i, j] = data[k, j]`` where ``offsets[k] = j - i``,
    so the Gram decomposes into diagonal pairs: entries of ``A^T A`` on
    output diagonal ``d = o2 - o1 ≥ 0`` are the elementwise products
    ``data[k1, j] * data[k2, j + d]`` over the columns where both
    diagonals carry a valid row — ``O(nd² · n)`` vectorised numpy with
    no sparse intermediate, versus the generic spgemm's index juggling.
    """

    name = "banded_ata"
    ops = frozenset(("ata",))

    def supports_operand(self, op, operand, model):
        return HAVE_SCIPY and isinstance(operand, _sps.dia_matrix)

    def operand_cost(self, op, operand, shape, dtype, model):
        if not self.supports_operand(op, operand, model):
            return float("inf")
        nd = len(operand.offsets)
        return float(nd * nd) * float(shape[1])

    def run(self, engine, op, a, c, alpha, b, model, parallel,
            held: Optional[dict] = None) -> None:
        m, n = a.shape
        data = a.data
        offsets = [int(o) for o in a.offsets]
        # pairs are walked in a fixed (k1, k2) order, so the float sum
        # per output diagonal is associated identically on every run
        for k1, o1 in enumerate(offsets):
            for k2, o2 in enumerate(offsets):
                d = o2 - o1
                if d < 0:
                    continue  # upper triangle; C stores the lower
                # column validity: row i = j - o1 must exist for both
                # diagonals and both columns must be in range
                lo = max(0, o1, o2 - d)
                hi = min(n, n - d, m + o1)
                if hi <= lo:
                    continue
                j = np.arange(lo, hi)
                c[j + d, j] += alpha * data[k1, j] * data[k2, j + d]


class LowRankGramBackend(Backend):
    """``A = U Vᵀ`` Gram via ``V (UᵀU) Vᵀ`` — no scipy, no dense ``A``."""

    name = "lowrank_gram"
    ops = frozenset(("ata", "atb"))
    operands = frozenset({"lowrank"})

    def supports(self, op, shape, dtype, model):
        return op in self.ops and np.dtype(dtype).kind in ("f", "c")

    def operand_cost(self, op, operand, shape, dtype, model):
        m, n = operand.shape
        r = operand.rank
        if op == "ata":
            return float(syrk_flops(m, r)) + float(gemm_flops(n, r, r)) \
                + float(gemm_flops(r, n, n))
        k = shape[2]
        return float(gemm_flops(m, r, k)) + float(gemm_flops(r, n, k))

    def run(self, engine, op, a, c, alpha, b, model, parallel,
            held: Optional[dict] = None) -> None:
        if op == "ata":
            core = a.u.T @ a.u                       # (r, r)
            _fold_lower(c, (a.v @ core) @ a.v.T, alpha)
        else:
            c += alpha * (a.v @ (a.u.T @ b))


def _register_builtins() -> None:
    for backend in (SparseGramBackend(), DensifyBackend(),
                    BandedAtaBackend(), LowRankGramBackend()):
        register_backend(backend)


_register_builtins()
