"""Dispatch front-end: shape-aware algorithm selection over cached plans.

:class:`ExecutionEngine` ties the three engine pieces together: it builds
the plan key for a request, fetches (or compiles) the plan through the
:class:`~repro.engine.cache.PlanCache`, checks a workspace out of the
:class:`~repro.engine.pool.WorkspacePool`, executes, and returns the
workspace.  A module-level default engine serves the library's own rewired
call sites (:mod:`repro.apps`, :mod:`repro.parallel.ata_shared`,
:mod:`repro.bench`); tests and benchmarks can construct isolated engines.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Iterable, List, Literal, Optional, Sequence

import numpy as np

from ..blas.kernels import scale, validate_matrix
from ..cache.model import CacheModel, default_cache_model
from ..errors import ConfigurationError, DTypeError, ShapeError
from .cache import PlanCache
from .dag import DagExecutor
from .plan import ExecutionPlan, compile_plan, execute_plan
from .pool import WorkspacePool

__all__ = ["ExecutionEngine", "EngineStats", "default_engine",
           "matmul_ata", "matmul_atb", "run_batch"]

AtaAlgo = Literal["auto", "syrk", "ata", "recursive_gemm", "tiled"]
AtbAlgo = Literal["auto", "strassen", "recursive_gemm"]
ParallelMode = Literal["auto", "dag", "off"]

#: "auto" falls back to sequential replay below this step count: the
#: scheduling machinery costs more than it can overlap on tiny plans.
_DAG_MIN_STEPS = 8


@dataclasses.dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of an engine's cache, pool and scheduler
    accounting."""

    plan_hits: int
    plan_misses: int
    plan_invalidations: int
    plan_evictions: int
    cached_plans: int
    pool_allocations: int
    pool_reuses: int
    pool_idle: int
    pool_evictions: int = 0
    dag_runs: int = 0
    dag_steps: int = 0
    sequential_runs: int = 0

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0


class ExecutionEngine:
    """Compile-once / execute-many front-end for the AtA algorithm family.

    Parameters
    ----------
    plan_capacity:
        LRU capacity of the plan cache.
    pool_size:
        Maximum idle workspaces retained by the workspace pool.
    workers:
        Maximum worker threads per plan execution (caller included).  With
        ``workers > 1`` and ``parallel`` not ``"off"``, plans are compiled
        with their step dependency DAG and widened scratch lanes, and
        large executions are scheduled across the worker pool.
    parallel:
        ``"auto"`` (default) DAG-schedules plans with enough independent
        steps when ``workers > 1``; ``"dag"`` forces DAG scheduling (with
        ``workers == 1`` this is a deterministic dependency-ordered
        replay); ``"off"`` always replays sequentially.
    scratch_lanes:
        Scratch lanes for DAG-capable plans (default ``min(workers, 4)``).
        More lanes decouple Strassen scratch reuse — raising available
        parallelism — at the cost of up to ``lanes``× the sequential
        workspace.

    Notes
    -----
    Results are bit-for-bit identical to the direct calls
    (:func:`repro.core.ata.ata`, :func:`repro.core.strassen.fast_strassen`,
    :func:`repro.core.recursive_gemm.recursive_gemm`) because plans replay
    the exact kernel sequence of the recursion, and DAG scheduling orders
    every pair of conflicting steps exactly as the sequential replay does
    (see :mod:`repro.engine.dag`).  The engine is safe to use from
    multiple threads: plans are immutable and each concurrent execution
    checks out its own workspace.
    """

    def __init__(self, plan_capacity: int = 128, pool_size: int = 8,
                 workers: int = 1, parallel: ParallelMode = "auto",
                 scratch_lanes: Optional[int] = None) -> None:
        if parallel not in ("auto", "dag", "off"):
            raise ConfigurationError(f"unknown parallel mode {parallel!r}; "
                                     "expected 'auto', 'dag' or 'off'")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if scratch_lanes is not None and scratch_lanes < 1:
            raise ConfigurationError(
                f"scratch_lanes must be >= 1, got {scratch_lanes}")
        self.plans = PlanCache(capacity=plan_capacity)
        self.pool = WorkspacePool(max_idle=pool_size)
        self.workers = int(workers)
        self.parallel = parallel
        self._dag_capable = parallel != "off" and (workers > 1 or parallel == "dag")
        if scratch_lanes is not None and not self._dag_capable:
            # lanes only affect DAG-capable plan layouts; silently ignoring
            # an explicit request would be confusing
            raise ConfigurationError(
                "scratch_lanes requires a DAG-capable engine (workers > 1 "
                "or parallel='dag'); it has no effect on sequential plans")
        self._lanes = (int(scratch_lanes) if scratch_lanes is not None
                       else (min(self.workers, 4) if self._dag_capable else 1))
        self.dag = DagExecutor(self.workers) if self._dag_capable else None
        # "auto" never schedules more workers than the host has cores: on
        # an under-provisioned host the GIL serialises the Python-level
        # dispatch and DAG scheduling would only add overhead ("dag" still
        # forces it, which is what the determinism tests rely on)
        self._auto_workers = min(self.workers, os.cpu_count() or 1)
        self._sequential_runs = 0
        self._stats_lock = threading.Lock()

    # -- plan acquisition ---------------------------------------------------
    def _plan(self, algo: str, shape: tuple, dtype, model: CacheModel) -> ExecutionPlan:
        lanes = self._lanes if self._dag_capable else 1
        key = (algo, shape, np.dtype(dtype).str,
               model.capacity_words, model.line_words, lanes)
        return self.plans.get_or_compile(
            key, lambda: compile_plan(algo, shape, dtype, model, key=key,
                                      lanes=lanes,
                                      build_dag=self._dag_capable))

    # -- scheduling ---------------------------------------------------------
    def _resolve_parallel(self, parallel: Optional[ParallelMode]) -> ParallelMode:
        if parallel is None:
            return self.parallel
        if parallel not in ("auto", "dag", "off"):
            raise ConfigurationError(f"unknown parallel mode {parallel!r}; "
                                     "expected 'auto', 'dag' or 'off'")
        if parallel == "dag" and not self._dag_capable:
            # "auto" degrades gracefully to sequential replay, but an
            # explicit DAG request on a sequential engine is a caller bug
            raise ConfigurationError(
                "parallel='dag' requires a DAG-capable engine; construct "
                "ExecutionEngine(workers=N) with N > 1 or parallel='dag'")
        return parallel

    def _execute(self, plan: ExecutionPlan, a: np.ndarray, c: np.ndarray,
                 alpha: float, workspace, b: Optional[np.ndarray],
                 parallel: Optional[ParallelMode]) -> None:
        mode = self._resolve_parallel(parallel)
        use_dag = (self.dag is not None and plan.dag is not None
                   and mode != "off"
                   and (mode == "dag"
                        or (self._auto_workers > 1
                            and plan.n_steps >= _DAG_MIN_STEPS
                            and plan.dag.max_width > 1)))
        if use_dag:
            # "auto" never schedules beyond the host's cores; an explicit
            # "dag" request honours the configured worker count as-is
            cap = self._auto_workers if mode == "auto" else None
            self.dag.execute(plan, a, c, alpha, workspace, b=b,
                             max_workers=cap)
        else:
            with self._stats_lock:
                self._sequential_runs += 1
            execute_plan(plan, a, c, alpha, workspace, b=b)

    # -- A^T A --------------------------------------------------------------
    def matmul_ata(self, a: np.ndarray, c: Optional[np.ndarray] = None,
                   alpha: float = 1.0, *, beta: float = 1.0,
                   algo: AtaAlgo = "auto",
                   cache: Optional[CacheModel] = None,
                   parallel: Optional[ParallelMode] = None) -> np.ndarray:
        """Lower-triangular ``C = alpha * A^T A + beta * C`` via a cached plan.

        Parameters
        ----------
        a:
            Input matrix of shape ``(m, n)``.
        c:
            Output ``(n, n)`` matrix (allocated as zeros when omitted);
            only its lower triangle is written.
        alpha, beta:
            BLAS-style scaling factors (``beta`` pre-scales ``c``).
        algo:
            ``"auto"`` picks ``syrk`` when the operand fits the cache model
            and the Algorithm 1 plan otherwise.  ``"ata"``, ``"syrk"``,
            ``"tiled"`` and ``"recursive_gemm"`` force a specific path
            (``recursive_gemm`` computes the full product out of place and
            folds its lower triangle into ``c`` — an oracle/fallback path).
        cache:
            Cache model for the base-case predicates; defaults to the
            configured model for ``a``'s dtype.
        parallel:
            Per-call scheduling override (``None`` uses the engine's
            mode): ``"off"`` forces sequential replay, ``"dag"`` forces
            DAG scheduling, ``"auto"`` applies the size heuristics.
        """
        validate_matrix(a, "A")
        m, n = a.shape
        if c is None:
            c = np.zeros((n, n), dtype=a.dtype)
        validate_matrix(c, "C")
        if c.shape != (n, n):
            raise ShapeError(f"C must have shape ({n}, {n}) for A of shape "
                             f"{a.shape}, got {c.shape}")
        if a.dtype != c.dtype:
            raise ShapeError(f"A and C must share a dtype, got {a.dtype} and {c.dtype}")

        model = cache if cache is not None else default_cache_model(a.dtype)
        if algo == "auto":
            algo = "syrk" if (model.fits_ata(m, n) or (m <= 1 and n <= 1)) else "ata"
        if algo not in ("syrk", "ata", "tiled", "recursive_gemm"):
            raise ShapeError(f"unknown AtA algorithm {algo!r}")

        scale(c, beta)

        if algo == "recursive_gemm":
            plan = self._plan("recursive_gemm", (m, n, n), a.dtype, model)
            full = np.zeros((n, n), dtype=a.dtype)
            self._execute(plan, a, full, alpha, None, a, parallel)
            idx = np.tril_indices(n)
            c[idx] += full[idx]
            return c

        plan = self._plan(algo, (m, n), a.dtype, model)
        workspace = self.pool.acquire(plan, a.dtype)
        try:
            self._execute(plan, a, c, alpha, workspace, None, parallel)
        finally:
            self.pool.release(workspace)
        return c

    # -- A^T B --------------------------------------------------------------
    def matmul_atb(self, a: np.ndarray, b: np.ndarray,
                   c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
                   algo: AtbAlgo = "auto",
                   cache: Optional[CacheModel] = None,
                   parallel: Optional[ParallelMode] = None) -> np.ndarray:
        """``C = alpha * A^T B + C`` via a cached plan.

        ``algo="auto"`` uses a single ``gemm_t`` kernel when the operands
        fit the cache model and FastStrassen otherwise;
        ``"recursive_gemm"`` forces the classical Algorithm 2 recursion.
        ``parallel`` overrides the engine's scheduling mode per call.
        """
        validate_matrix(a, "A")
        validate_matrix(b, "B")
        m, n = a.shape
        mb, k = b.shape
        if mb != m:
            raise ShapeError(f"A and B must share their first dimension, "
                             f"got {a.shape} and {b.shape}")
        if c is None:
            c = np.zeros((n, k), dtype=np.result_type(a, b))
        validate_matrix(c, "C")
        if c.shape != (n, k):
            raise ShapeError(f"C must have shape ({n}, {k}), got {c.shape}")
        if not (a.dtype == b.dtype == c.dtype):
            # the base-case kernels of the direct path enforce this; the
            # plan executor inlines them, so enforce it up front instead of
            # silently computing through a reduced-precision workspace
            raise DTypeError("operands must share a dtype, got "
                             f"{sorted({str(a.dtype), str(b.dtype), str(c.dtype)})}")

        model = cache if cache is not None else default_cache_model(a.dtype)
        if algo == "auto":
            algo = "strassen"
        if algo not in ("strassen", "recursive_gemm"):
            raise ShapeError(f"unknown A^T B algorithm {algo!r}")

        plan = self._plan(algo, (m, n, k), a.dtype, model)
        workspace = self.pool.acquire(plan, a.dtype)
        try:
            self._execute(plan, a, c, alpha, workspace, b, parallel)
        finally:
            self.pool.release(workspace)
        return c

    # -- batching -----------------------------------------------------------
    def run_batch(self, matrices: Sequence[np.ndarray], *,
                  algo: AtaAlgo = "auto", alpha: float = 1.0,
                  cache: Optional[CacheModel] = None,
                  parallel: Optional[ParallelMode] = None) -> List[np.ndarray]:
        """Compute ``alpha * A^T A`` for every matrix in ``matrices``.

        Matrices sharing a plan key are executed against a single checked-
        out workspace, so a homogeneous batch compiles once and allocates
        once no matter its length.  Results are identical to calling
        :meth:`matmul_ata` in a loop.  ``parallel`` overrides the engine's
        scheduling mode for every matrix in the batch.
        """
        if algo not in ("auto", "syrk", "ata", "tiled", "recursive_gemm"):
            raise ShapeError(f"unknown AtA algorithm {algo!r}")
        held: dict = {}
        results: List[np.ndarray] = []
        try:
            for a in matrices:
                validate_matrix(a, "A")
                m, n = a.shape
                model = cache if cache is not None else default_cache_model(a.dtype)
                effective = algo
                if effective == "auto":
                    effective = "syrk" if (model.fits_ata(m, n)
                                           or (m <= 1 and n <= 1)) else "ata"
                if effective == "recursive_gemm":
                    results.append(self.matmul_ata(a, alpha=alpha, algo=effective,
                                                   cache=model, parallel=parallel))
                    continue
                plan = self._plan(effective, (m, n), a.dtype, model)
                c = np.zeros((n, n), dtype=a.dtype)
                workspace = None
                if plan.needs_workspace:
                    workspace = held.get(plan.key)
                    if workspace is None:
                        workspace = held[plan.key] = self.pool.acquire(plan, a.dtype)
                self._execute(plan, a, c, alpha, workspace, None, parallel)
                results.append(c)
        finally:
            for workspace in held.values():
                self.pool.release(workspace)
        return results

    # -- maintenance --------------------------------------------------------
    def stats(self) -> EngineStats:
        """Snapshot the plan-cache, workspace-pool and DAG-scheduler
        accounting."""
        return EngineStats(
            plan_hits=self.plans.hits,
            plan_misses=self.plans.misses,
            plan_invalidations=self.plans.invalidations,
            plan_evictions=self.plans.evictions,
            cached_plans=len(self.plans),
            pool_allocations=self.pool.allocations,
            pool_reuses=self.pool.reuses,
            pool_idle=self.pool.idle_count,
            pool_evictions=self.pool.evictions,
            dag_runs=self.dag.runs if self.dag is not None else 0,
            dag_steps=self.dag.steps_retired if self.dag is not None else 0,
            sequential_runs=self._sequential_runs,
        )

    def clear(self) -> None:
        """Drop all cached plans and pooled workspaces (stats retained)."""
        self.plans.invalidate()
        self.pool.clear()

    def close(self) -> None:
        """Release the DAG executor's helper threads (engine stays usable;
        threads are recreated on the next parallel execution)."""
        if self.dag is not None:
            self.dag.shutdown()


#: The process-wide engine serving the library's rewired call sites.
_DEFAULT_ENGINE = ExecutionEngine()


def default_engine() -> ExecutionEngine:
    """Return the process-wide :class:`ExecutionEngine` instance."""
    return _DEFAULT_ENGINE


def matmul_ata(a: np.ndarray, c: Optional[np.ndarray] = None,
               alpha: float = 1.0, *, beta: float = 1.0,
               algo: AtaAlgo = "auto",
               cache: Optional[CacheModel] = None) -> np.ndarray:
    """Module-level convenience: :meth:`ExecutionEngine.matmul_ata` on the
    default engine."""
    return _DEFAULT_ENGINE.matmul_ata(a, c, alpha, beta=beta, algo=algo, cache=cache)


def matmul_atb(a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray] = None,
               alpha: float = 1.0, *, algo: AtbAlgo = "auto",
               cache: Optional[CacheModel] = None) -> np.ndarray:
    """Module-level convenience: :meth:`ExecutionEngine.matmul_atb` on the
    default engine."""
    return _DEFAULT_ENGINE.matmul_atb(a, b, c, alpha, algo=algo, cache=cache)


def run_batch(matrices: Sequence[np.ndarray], *, algo: AtaAlgo = "auto",
              alpha: float = 1.0,
              cache: Optional[CacheModel] = None) -> List[np.ndarray]:
    """Module-level convenience: :meth:`ExecutionEngine.run_batch` on the
    default engine."""
    return _DEFAULT_ENGINE.run_batch(matrices, algo=algo, alpha=alpha, cache=cache)
