"""Dispatch front-end: shape-aware algorithm selection over cached plans.

:class:`ExecutionEngine` ties the three engine pieces together: it builds
the plan key for a request, fetches (or compiles) the plan through the
:class:`~repro.engine.cache.PlanCache`, checks a workspace out of the
:class:`~repro.engine.pool.WorkspacePool`, executes, and returns the
workspace.  A module-level default engine serves the library's own rewired
call sites (:mod:`repro.apps`, :mod:`repro.parallel.ata_shared`,
:mod:`repro.bench`); tests and benchmarks can construct isolated engines.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Literal, Optional, Sequence

import numpy as np

from ..blas.kernels import scale, validate_matrix
from ..cache.model import CacheModel, default_cache_model
from ..errors import DTypeError, ShapeError
from .cache import PlanCache
from .plan import ExecutionPlan, compile_plan, execute_plan
from .pool import WorkspacePool

__all__ = ["ExecutionEngine", "EngineStats", "default_engine",
           "matmul_ata", "matmul_atb", "run_batch"]

AtaAlgo = Literal["auto", "syrk", "ata", "recursive_gemm", "tiled"]
AtbAlgo = Literal["auto", "strassen", "recursive_gemm"]


@dataclasses.dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of an engine's cache and pool accounting."""

    plan_hits: int
    plan_misses: int
    plan_invalidations: int
    plan_evictions: int
    cached_plans: int
    pool_allocations: int
    pool_reuses: int
    pool_idle: int

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0


class ExecutionEngine:
    """Compile-once / execute-many front-end for the AtA algorithm family.

    Parameters
    ----------
    plan_capacity:
        LRU capacity of the plan cache.
    pool_size:
        Maximum idle workspaces retained by the workspace pool.

    Notes
    -----
    Results are bit-for-bit identical to the direct calls
    (:func:`repro.core.ata.ata`, :func:`repro.core.strassen.fast_strassen`,
    :func:`repro.core.recursive_gemm.recursive_gemm`) because plans replay
    the exact kernel sequence of the recursion.  The engine is safe to use
    from multiple threads: plans are immutable and each concurrent
    execution checks out its own workspace.
    """

    def __init__(self, plan_capacity: int = 128, pool_size: int = 8) -> None:
        self.plans = PlanCache(capacity=plan_capacity)
        self.pool = WorkspacePool(max_idle=pool_size)

    # -- plan acquisition ---------------------------------------------------
    def _plan(self, algo: str, shape: tuple, dtype, model: CacheModel) -> ExecutionPlan:
        key = (algo, shape, np.dtype(dtype).str,
               model.capacity_words, model.line_words)
        return self.plans.get_or_compile(
            key, lambda: compile_plan(algo, shape, dtype, model, key=key))

    # -- A^T A --------------------------------------------------------------
    def matmul_ata(self, a: np.ndarray, c: Optional[np.ndarray] = None,
                   alpha: float = 1.0, *, beta: float = 1.0,
                   algo: AtaAlgo = "auto",
                   cache: Optional[CacheModel] = None) -> np.ndarray:
        """Lower-triangular ``C = alpha * A^T A + beta * C`` via a cached plan.

        Parameters
        ----------
        a:
            Input matrix of shape ``(m, n)``.
        c:
            Output ``(n, n)`` matrix (allocated as zeros when omitted);
            only its lower triangle is written.
        alpha, beta:
            BLAS-style scaling factors (``beta`` pre-scales ``c``).
        algo:
            ``"auto"`` picks ``syrk`` when the operand fits the cache model
            and the Algorithm 1 plan otherwise.  ``"ata"``, ``"syrk"``,
            ``"tiled"`` and ``"recursive_gemm"`` force a specific path
            (``recursive_gemm`` computes the full product out of place and
            folds its lower triangle into ``c`` — an oracle/fallback path).
        cache:
            Cache model for the base-case predicates; defaults to the
            configured model for ``a``'s dtype.
        """
        validate_matrix(a, "A")
        m, n = a.shape
        if c is None:
            c = np.zeros((n, n), dtype=a.dtype)
        validate_matrix(c, "C")
        if c.shape != (n, n):
            raise ShapeError(f"C must have shape ({n}, {n}) for A of shape "
                             f"{a.shape}, got {c.shape}")
        if a.dtype != c.dtype:
            raise ShapeError(f"A and C must share a dtype, got {a.dtype} and {c.dtype}")

        model = cache if cache is not None else default_cache_model(a.dtype)
        if algo == "auto":
            algo = "syrk" if (model.fits_ata(m, n) or (m <= 1 and n <= 1)) else "ata"
        if algo not in ("syrk", "ata", "tiled", "recursive_gemm"):
            raise ShapeError(f"unknown AtA algorithm {algo!r}")

        scale(c, beta)

        if algo == "recursive_gemm":
            plan = self._plan("recursive_gemm", (m, n, n), a.dtype, model)
            full = np.zeros((n, n), dtype=a.dtype)
            execute_plan(plan, a, full, alpha, b=a)
            idx = np.tril_indices(n)
            c[idx] += full[idx]
            return c

        plan = self._plan(algo, (m, n), a.dtype, model)
        workspace = self.pool.acquire(plan, a.dtype)
        try:
            execute_plan(plan, a, c, alpha, workspace)
        finally:
            self.pool.release(workspace)
        return c

    # -- A^T B --------------------------------------------------------------
    def matmul_atb(self, a: np.ndarray, b: np.ndarray,
                   c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
                   algo: AtbAlgo = "auto",
                   cache: Optional[CacheModel] = None) -> np.ndarray:
        """``C = alpha * A^T B + C`` via a cached plan.

        ``algo="auto"`` uses a single ``gemm_t`` kernel when the operands
        fit the cache model and FastStrassen otherwise;
        ``"recursive_gemm"`` forces the classical Algorithm 2 recursion.
        """
        validate_matrix(a, "A")
        validate_matrix(b, "B")
        m, n = a.shape
        mb, k = b.shape
        if mb != m:
            raise ShapeError(f"A and B must share their first dimension, "
                             f"got {a.shape} and {b.shape}")
        if c is None:
            c = np.zeros((n, k), dtype=np.result_type(a, b))
        validate_matrix(c, "C")
        if c.shape != (n, k):
            raise ShapeError(f"C must have shape ({n}, {k}), got {c.shape}")
        if not (a.dtype == b.dtype == c.dtype):
            # the base-case kernels of the direct path enforce this; the
            # plan executor inlines them, so enforce it up front instead of
            # silently computing through a reduced-precision workspace
            raise DTypeError("operands must share a dtype, got "
                             f"{sorted({str(a.dtype), str(b.dtype), str(c.dtype)})}")

        model = cache if cache is not None else default_cache_model(a.dtype)
        if algo == "auto":
            algo = "strassen"
        if algo not in ("strassen", "recursive_gemm"):
            raise ShapeError(f"unknown A^T B algorithm {algo!r}")

        plan = self._plan(algo, (m, n, k), a.dtype, model)
        workspace = self.pool.acquire(plan, a.dtype)
        try:
            execute_plan(plan, a, c, alpha, workspace, b=b)
        finally:
            self.pool.release(workspace)
        return c

    # -- batching -----------------------------------------------------------
    def run_batch(self, matrices: Sequence[np.ndarray], *,
                  algo: AtaAlgo = "auto", alpha: float = 1.0,
                  cache: Optional[CacheModel] = None) -> List[np.ndarray]:
        """Compute ``alpha * A^T A`` for every matrix in ``matrices``.

        Matrices sharing a plan key are executed against a single checked-
        out workspace, so a homogeneous batch compiles once and allocates
        once no matter its length.  Results are identical to calling
        :meth:`matmul_ata` in a loop.
        """
        if algo not in ("auto", "syrk", "ata", "tiled", "recursive_gemm"):
            raise ShapeError(f"unknown AtA algorithm {algo!r}")
        held: dict = {}
        results: List[np.ndarray] = []
        try:
            for a in matrices:
                validate_matrix(a, "A")
                m, n = a.shape
                model = cache if cache is not None else default_cache_model(a.dtype)
                effective = algo
                if effective == "auto":
                    effective = "syrk" if (model.fits_ata(m, n)
                                           or (m <= 1 and n <= 1)) else "ata"
                if effective == "recursive_gemm":
                    results.append(self.matmul_ata(a, alpha=alpha, algo=effective,
                                                   cache=model))
                    continue
                plan = self._plan(effective, (m, n), a.dtype, model)
                c = np.zeros((n, n), dtype=a.dtype)
                workspace = None
                if plan.needs_workspace:
                    workspace = held.get(plan.key)
                    if workspace is None:
                        workspace = held[plan.key] = self.pool.acquire(plan, a.dtype)
                execute_plan(plan, a, c, alpha, workspace)
                results.append(c)
        finally:
            for workspace in held.values():
                self.pool.release(workspace)
        return results

    # -- maintenance --------------------------------------------------------
    def stats(self) -> EngineStats:
        """Snapshot the plan-cache and workspace-pool accounting."""
        return EngineStats(
            plan_hits=self.plans.hits,
            plan_misses=self.plans.misses,
            plan_invalidations=self.plans.invalidations,
            plan_evictions=self.plans.evictions,
            cached_plans=len(self.plans),
            pool_allocations=self.pool.allocations,
            pool_reuses=self.pool.reuses,
            pool_idle=self.pool.idle_count,
        )

    def clear(self) -> None:
        """Drop all cached plans and pooled workspaces (stats retained)."""
        self.plans.invalidate()
        self.pool.clear()


#: The process-wide engine serving the library's rewired call sites.
_DEFAULT_ENGINE = ExecutionEngine()


def default_engine() -> ExecutionEngine:
    """Return the process-wide :class:`ExecutionEngine` instance."""
    return _DEFAULT_ENGINE


def matmul_ata(a: np.ndarray, c: Optional[np.ndarray] = None,
               alpha: float = 1.0, *, beta: float = 1.0,
               algo: AtaAlgo = "auto",
               cache: Optional[CacheModel] = None) -> np.ndarray:
    """Module-level convenience: :meth:`ExecutionEngine.matmul_ata` on the
    default engine."""
    return _DEFAULT_ENGINE.matmul_ata(a, c, alpha, beta=beta, algo=algo, cache=cache)


def matmul_atb(a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray] = None,
               alpha: float = 1.0, *, algo: AtbAlgo = "auto",
               cache: Optional[CacheModel] = None) -> np.ndarray:
    """Module-level convenience: :meth:`ExecutionEngine.matmul_atb` on the
    default engine."""
    return _DEFAULT_ENGINE.matmul_atb(a, b, c, alpha, algo=algo, cache=cache)


def run_batch(matrices: Sequence[np.ndarray], *, algo: AtaAlgo = "auto",
              alpha: float = 1.0,
              cache: Optional[CacheModel] = None) -> List[np.ndarray]:
    """Module-level convenience: :meth:`ExecutionEngine.run_batch` on the
    default engine."""
    return _DEFAULT_ENGINE.run_batch(matrices, algo=algo, alpha=alpha, cache=cache)
