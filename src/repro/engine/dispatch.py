"""Dispatch front-end: registry-driven backend selection over cached plans.

:class:`ExecutionEngine` ties the engine pieces together: it resolves each
request to an execution :class:`~repro.engine.backends.Backend` (explicit
``algo=``, the configured ``Config.backend`` / ``REPRO_BACKEND`` override,
a measured :class:`~repro.engine.tuner.BackendTuner` decision, or the
deterministic modeled-cost heuristic — in that order), and provides the
services backends execute through: the plan cache, the workspace pool and
the sequential/DAG schedulers.  A module-level default engine serves the
library's own rewired call sites (:mod:`repro.apps`,
:mod:`repro.parallel.ata_shared`, :mod:`repro.bench`); tests and
benchmarks construct isolated engines.

Algorithm selection is **pluggable**: nothing in this module enumerates
algorithms.  ``algo=`` strings are looked up in the backend registry
(:mod:`repro.engine.backends`), so a backend registered at runtime is
immediately dispatchable, and the set a given operation accepts is exactly
``backend_names(op)``.

With ``tuner="measured"`` (or an explicit :class:`BackendTuner`),
``algo="auto"`` consults the tuner's per-(shape-bucket, dtype) timing
table: under-sampled backends are explored with real traffic until the
exploration budget is met, after which every call dispatches to the
measured-fastest backend; timings persist across processes (see
:mod:`repro.engine.tuner`).  The tuner only reorders *which* backend wins
— each backend's output remains bit-identical to its direct call.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..blas.kernels import scale, validate_matrix
from ..cache.model import CacheModel, default_cache_model
from ..config import get_config
from ..errors import ConfigurationError, DTypeError, ShapeError
from .backends import (Backend, PlanBackend, candidates, choose_heuristic,
                       get_backend)
from .cache import PlanCache
from .cpu import available_cpus
from .dag import DagExecutor
from .plan import ExecutionPlan, compile_plan, execute_plan
from .pool import WorkspacePool
from .sparse import density_bucket, operand_kind, operand_nnz, validate_operand
from .tuner import BackendTuner

__all__ = ["ExecutionEngine", "EngineStats", "default_engine",
           "matmul_ata", "matmul_atb", "run_batch", "run_batch_atb",
           "validate_atb_operands"]


def validate_atb_operands(a: np.ndarray, b: np.ndarray) -> None:
    """Validate an ``(A, B)`` pair for the ``atb`` operation.

    Shared by :meth:`ExecutionEngine.run_batch_atb` and the serving
    layer's pre-admission validation (:mod:`repro.serve.server`), so the
    operand rules — and their error messages — can never drift between
    the two.
    """
    validate_matrix(a, "A")
    validate_matrix(b, "B")
    if b.shape[0] != a.shape[0]:
        raise ShapeError("A and B must share their first dimension, "
                         f"got {a.shape} and {b.shape}")
    if a.dtype != b.dtype:
        raise DTypeError("operands must share a dtype, got "
                         f"{sorted({str(a.dtype), str(b.dtype)})}")

#: Algorithm selectors are backend names now — plain strings resolved in
#: the registry — not closed ``Literal`` unions.  The aliases survive for
#: annotation compatibility.
AtaAlgo = str
AtbAlgo = str
ParallelMode = str

_PARALLEL_MODES = ("auto", "dag", "off")

#: "auto" falls back to sequential replay below this step count: the
#: scheduling machinery costs more than it can overlap on tiny plans.
_DAG_MIN_STEPS = 8


@dataclasses.dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of an engine's cache, pool, scheduler,
    backend and tuner accounting."""

    plan_hits: int
    plan_misses: int
    plan_invalidations: int
    plan_evictions: int
    cached_plans: int
    pool_allocations: int
    pool_reuses: int
    pool_idle: int
    pool_evictions: int = 0
    dag_runs: int = 0
    dag_steps: int = 0
    sequential_runs: int = 0
    #: executions per backend name (every completed matmul_* increments
    #: exactly one bucket)
    backend_runs: Mapping[str, int] = dataclasses.field(default_factory=dict)
    #: tuner decisions served from the measured table (exploit)
    tuner_hits: int = 0
    #: tuner decisions that sampled an under-measured backend (explore)
    tuner_explores: int = 0
    #: completed ``run_batch`` / ``run_batch_atb`` invocations
    batch_calls: int = 0
    #: requests those batch invocations carried in total — the serving
    #: layer's coalescing effectiveness is ``batch_items / batch_calls``
    batch_items: int = 0
    #: completed out-of-core (:mod:`repro.engine.ooc`) runs through this
    #: engine
    ooc_runs: int = 0
    #: row panels those runs streamed in total
    ooc_panels: int = 0
    #: high-water mark (bytes) of the out-of-core resident set across all
    #: runs: the output ``C`` plus the staged panel(s) — see
    #: :class:`repro.engine.ooc.OocRunStats`
    ooc_bytes_resident_high: int = 0
    #: memory budget (bytes) of the most recent out-of-core run
    #: (0 = unbounded)
    ooc_budget_bytes: int = 0
    #: completed multi-process farm (:mod:`repro.engine.farm`) runs
    #: recorded against this engine
    farm_runs: int = 0
    #: row panels those farm runs fanned out in total
    farm_panels: int = 0
    #: worker-process count of the most recent farm run
    farm_procs: int = 0
    #: high-water mark (bytes) of the farm resident set across all runs:
    #: ``C`` plus every worker's input/output arenas — see
    #: :class:`repro.engine.farm.FarmRunStats`
    farm_bytes_resident_high: int = 0
    #: worker processes respawned after dying or failing mid-run, across
    #: all farm runs (0 = no recovery was ever needed)
    farm_respawns: int = 0
    #: panel replays: lost panels re-staged onto respawned workers,
    #: across all farm runs
    farm_retried_panels: int = 0
    #: panels completed by the farm's in-process degradation path after
    #: the per-panel retry budget (``Config.farm_max_retries``) ran out
    farm_degraded: int = 0
    #: primitive steps executed inside fused dispatch units, summed over
    #: every fused-plan execution (0 = fusion off or no chains found)
    fused_steps: int = 0
    #: compiled kernels attached to fused units by the codegen layer
    #: (each is verified bit-for-bit against the interpreter on its first
    #: call before being trusted)
    codegen_kernels: int = 0
    #: batch invocations whose entries were interleaved through one
    #: cross-entry super-DAG instead of executing serially
    interleaved_batches: int = 0
    #: batch entries those interleaved invocations carried in total
    interleaved_items: int = 0
    #: lifetime high-water mark (bytes) of the engine's pooled workspaces
    #: (idle + checked out) — the figure the out-of-core executor charges
    #: against ``Config.memory_budget``
    pool_bytes_high: int = 0
    #: completed matmul_* calls whose operand was structured (scipy
    #: sparse or :class:`repro.engine.sparse.LowRank`)
    sparse_runs: int = 0
    #: structured runs served by the ``densify`` crossover backend — the
    #: measured tuner (or modeled heuristic) judged materialising the
    #: operand densely faster than staying sparse
    densify_crossovers: int = 0
    #: stored entries (nnz) those structured runs processed in total
    sparse_nnz: int = 0

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    @property
    def total_backend_runs(self) -> int:
        return sum(self.backend_runs.values())

    @property
    def mean_batch_size(self) -> float:
        return self.batch_items / self.batch_calls if self.batch_calls else 0.0


class ExecutionEngine:
    """Compile-once / execute-many front-end for the AtA algorithm family.

    Parameters
    ----------
    plan_capacity:
        LRU capacity of the plan cache.
    pool_size:
        Maximum idle workspaces retained by the workspace pool.
    workers:
        Maximum worker threads per plan execution (caller included).  With
        ``workers > 1`` and ``parallel`` not ``"off"``, plans are compiled
        with their step dependency DAG and widened scratch lanes, and
        large executions are scheduled across the worker pool.
    parallel:
        ``"auto"`` (default) DAG-schedules plans with enough independent
        steps when ``workers > 1``; ``"dag"`` forces DAG scheduling (with
        ``workers == 1`` this is a deterministic dependency-ordered
        replay); ``"off"`` always replays sequentially.
    scratch_lanes:
        Scratch lanes for DAG-capable plans (default ``min(workers, 4)``).
        More lanes decouple Strassen scratch reuse — raising available
        parallelism — at the cost of up to ``lanes``× the sequential
        workspace.
    tuner:
        Backend auto-tuning for ``algo="auto"`` requests.  ``None`` /
        ``"off"`` (default) uses the deterministic modeled-cost heuristic;
        ``"measured"`` attaches a :class:`~repro.engine.tuner.BackendTuner`
        persisting to the configured table path; ``"frozen"`` attaches a
        read-only tuner that only exploits the persisted table (falling
        through to the heuristic on unsampled buckets — deterministic
        choices across runs); an explicit :class:`BackendTuner` instance
        is used as-is (several engines may share one).
    fuse:
        Plan-fusion mode for this engine (``None`` reads ``Config.fuse``
        per call): ``"on"`` compiles ``algo="auto"`` plans with the
        compiler's step-fusion pass, ``"off"`` disables it, ``"auto"``
        lets an attached measured tuner arbitrate fused-vs-unfused per
        (op, dtype, shape-bucket) exactly as it arbitrates backends
        (without a tuner, ``"auto"`` behaves like ``"on"``).  Fused
        execution is bit-identical to the unfused replay.
    codegen:
        Compiled lowering of fused units (``None`` reads
        ``Config.codegen``): ``"on"``/``"auto"`` attach jitted kernels to
        fused units when a provider is importable (see
        :mod:`repro.engine.codegen`); ``"off"`` always interprets.
        Absence-clean: with no provider, execution is exactly the
        interpreter.

    Notes
    -----
    Results are bit-for-bit identical to each backend's direct call
    (:func:`repro.core.ata.ata`, :func:`repro.core.strassen.fast_strassen`,
    :func:`repro.core.recursive_gemm.recursive_gemm`,
    :func:`repro.blas.direct.direct_syrk`) because plans replay the exact
    kernel sequence of the recursion, and DAG scheduling orders every pair
    of conflicting steps exactly as the sequential replay does (see
    :mod:`repro.engine.dag`).  The tuner never perturbs a backend's
    output; it only selects among backends.  The engine is safe to use
    from multiple threads: plans are immutable and each concurrent
    execution checks out its own workspace.
    """

    def __init__(self, plan_capacity: int = 128, pool_size: int = 8,
                 workers: int = 1, parallel: ParallelMode = "auto",
                 scratch_lanes: Optional[int] = None,
                 tuner: Union[str, BackendTuner, None] = None,
                 fuse: Optional[str] = None,
                 codegen: Optional[str] = None) -> None:
        if parallel not in _PARALLEL_MODES:
            raise ConfigurationError(f"unknown parallel mode {parallel!r}; "
                                     "expected 'auto', 'dag' or 'off'")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if fuse is not None and fuse not in ("off", "on", "auto"):
            raise ConfigurationError(f"unknown fuse mode {fuse!r}; "
                                     "expected 'off', 'on' or 'auto'")
        if codegen is not None and codegen not in ("off", "on", "auto"):
            raise ConfigurationError(f"unknown codegen mode {codegen!r}; "
                                     "expected 'off', 'on' or 'auto'")
        self._fuse = fuse
        self._codegen = codegen
        if scratch_lanes is not None and scratch_lanes < 1:
            raise ConfigurationError(
                f"scratch_lanes must be >= 1, got {scratch_lanes}")
        self.plans = PlanCache(capacity=plan_capacity)
        self.pool = WorkspacePool(max_idle=pool_size)
        self.workers = int(workers)
        self.parallel = parallel
        self._dag_capable = parallel != "off" and (workers > 1 or parallel == "dag")
        if scratch_lanes is not None and not self._dag_capable:
            # lanes only affect DAG-capable plan layouts; silently ignoring
            # an explicit request would be confusing
            raise ConfigurationError(
                "scratch_lanes requires a DAG-capable engine (workers > 1 "
                "or parallel='dag'); it has no effect on sequential plans")
        self._lanes = (int(scratch_lanes) if scratch_lanes is not None
                       else (min(self.workers, 4) if self._dag_capable else 1))
        self.dag = DagExecutor(self.workers) if self._dag_capable else None
        # "auto" never schedules more workers than the host has cores: on
        # an under-provisioned host the GIL serialises the Python-level
        # dispatch and DAG scheduling would only add overhead ("dag" still
        # forces it, which is what the determinism tests rely on).  The
        # count honours the affinity/cgroup mask, not the installed cores:
        # a container pinned to 2 of 64 cores gets 2 auto workers
        self._auto_workers = min(self.workers, available_cpus())
        if tuner is None or tuner == "off":
            self.tuner: Optional[BackendTuner] = None
        elif tuner == "measured":
            self.tuner = BackendTuner()
        elif tuner == "frozen":
            self.tuner = BackendTuner(frozen=True)
        elif isinstance(tuner, BackendTuner):
            self.tuner = tuner
        else:
            raise ConfigurationError(
                f"unknown tuner {tuner!r}; expected 'off', 'measured', "
                "'frozen' or a BackendTuner instance")
        # timings from a DAG-parallel engine describe different executions
        # than a sequential engine's, so tuner cells key on this signature
        # (None = sequential) and engines with different scheduling never
        # cross-pollute a shared table
        self._tuner_sched = (f"w{self.workers}l{self._lanes}"
                             if self._dag_capable else None)
        self._sequential_runs = 0
        self._batch_calls = 0
        self._batch_items = 0
        self._ooc_runs = 0
        self._ooc_panels = 0
        self._ooc_resident_high = 0
        self._ooc_budget = 0
        self._farm_runs = 0
        self._farm_panels = 0
        self._farm_procs = 0
        self._farm_resident_high = 0
        self._farm_respawns = 0
        self._farm_retried_panels = 0
        self._farm_degraded = 0
        self._backend_runs: Dict[str, int] = {}
        # per-engine tuner accounting: a shared BackendTuner's lifetime
        # counters would misattribute other engines' decisions
        self._tuner_hits = 0
        self._tuner_explores = 0
        self._fused_steps = 0
        self._codegen_kernels = 0
        self._sparse_runs = 0
        self._densify_crossovers = 0
        self._sparse_nnz = 0
        self._interleaved_batches = 0
        self._interleaved_items = 0
        # a tuner-arbitrated fused-vs-unfused decision must reach _plan()
        # through Backend.run, whose signature is frozen (custom backends
        # registered by callers predate the fuse knob); backend.run
        # executes synchronously on the calling thread, so a thread-local
        # override set around the call is race-free
        self._fuse_local = threading.local()
        self._stats_lock = threading.Lock()

    # -- plan acquisition ---------------------------------------------------
    def _fuse_mode(self) -> str:
        return self._fuse if self._fuse is not None else get_config().fuse

    def _codegen_mode(self) -> str:
        return self._codegen if self._codegen is not None else get_config().codegen

    def _plan(self, backend: str, kind: str, shape: tuple, dtype,
              model: CacheModel,
              fuse: Optional[bool] = None) -> ExecutionPlan:
        """Fetch (or compile) the plan for ``(backend, kind, shape)``.

        The key leads with the backend id, so two backends compiling the
        same plan kind can never collide in the cache, and carries the
        resolved fused flag, so fused and unfused plans never alias.
        ``fuse=None`` resolves through the per-call thread-local override
        (a tuner-arbitrated decision) and then the engine's fuse mode.
        """
        if fuse is None:
            fuse = getattr(self._fuse_local, "value", None)
            if fuse is None:
                fuse = self._fuse_mode() != "off"
        fuse = bool(fuse)
        lanes = self._lanes if self._dag_capable else 1
        key = (backend, kind, shape, np.dtype(dtype).str,
               model.capacity_words, model.line_words, lanes, fuse)
        return self.plans.get_or_compile(
            key, lambda: compile_plan(kind, shape, dtype, model, key=key,
                                      lanes=lanes,
                                      build_dag=self._dag_capable,
                                      fuse=fuse))

    # -- backend resolution -------------------------------------------------
    def _effective_sched(self, parallel: Optional[str]) -> Optional[str]:
        """Tuner cell signature for this call.

        An explicit per-call ``parallel="off"`` override executes
        sequentially whatever the engine's configuration, so its timings
        belong in the sequential cell.  (``"auto"``'s small-plan fallback
        is not modelled here — which schedule it takes depends on the
        compiled plan, unknown before the backend is chosen — so tiny
        plans on a DAG engine are approximated by the engine signature.)
        """
        if self._tuner_sched is None:
            return None
        if self._resolve_parallel(parallel) == "off":
            return None
        return self._tuner_sched

    def _resolve_backend(self, op: str, shape: Tuple[int, ...], dtype,
                         model: CacheModel, algo: str,
                         parallel: Optional[str] = None,
                         operand=None, density: Optional[str] = None
                         ) -> Tuple[Backend, bool, Optional[str],
                                    Optional[bool], str]:
        """Resolve a request to a backend.

        Returns ``(backend, measured, sched, fuse, record_name)`` where
        ``measured`` marks a tuner decision whose execution should be
        timed, ``sched`` is the scheduling signature that decision was
        filed under (threaded through to the matching ``record`` so the
        two can never disagree), ``fuse`` is the tuner-arbitrated
        fused-vs-unfused decision (``None`` = engine default), and
        ``record_name`` the candidate name the timing is recorded under
        (``"<backend>+fused"`` for arbitrated fused variants).
        Precedence: explicit ``algo`` > configured ``Config.backend`` >
        tuner > modeled-cost heuristic.

        With fuse mode ``"auto"`` and a tuner attached, every
        plan-compiled candidate enters the table twice — plain and
        ``"+fused"`` — and the measured table arbitrates the pair exactly
        as it arbitrates distinct backends.

        A structured ``operand`` (scipy sparse / :class:`LowRank`) flips
        the candidate axis to its kind — only backends declaring that
        kind are considered at every precedence level — and ``density``
        scopes the tuner cell, so the sparse-vs-densify crossover is
        measured per density bucket.  Dense requests (``operand=None``)
        resolve byte-identically to the pre-sparse engine.
        """
        kind = operand_kind(operand) if operand is not None else "dense"
        if algo != "auto":
            backend = get_backend(algo, op)
            if kind not in backend.operands:
                raise ShapeError(
                    f"backend {algo!r} does not accept {kind!r} operands "
                    f"(accepts {sorted(backend.operands)})")
            if not backend.supports(op, shape, dtype, model):
                raise ShapeError(
                    f"backend {algo!r} cannot serve {op!r} on shape {shape} "
                    f"with dtype {np.dtype(dtype)} on this host")
            if (operand is not None
                    and not backend.supports_operand(op, operand, model)):
                raise ShapeError(
                    f"backend {algo!r} does not accept this {kind} operand "
                    f"(shape {shape})")
            return backend, False, None, None, backend.name
        forced = get_config().backend
        if forced != "auto":
            try:
                backend = get_backend(forced, op)
            except ShapeError:
                backend = None  # forced backend does not serve this op
            if (backend is not None and kind in backend.operands
                    and backend.supports(op, shape, dtype, model)
                    and (operand is None
                         or backend.supports_operand(op, operand, model))):
                return backend, False, None, None, backend.name
        pool = candidates(op, shape, dtype, model, kind=kind, operand=operand)
        if self.tuner is not None:
            arbitrate = self._fuse_mode() == "auto"
            names = [b.name for b in pool]
            if arbitrate:
                names += [b.name + "+fused" for b in pool
                          if isinstance(b, PlanBackend)]
            if len(names) > 1:
                sched = self._effective_sched(parallel)
                name, explored = self.tuner.choose(op, shape, dtype,
                                                   tuple(names),
                                                   model=model, sched=sched,
                                                   density=density)
                if name is not None:  # a frozen tuner may abstain
                    with self._stats_lock:
                        if explored:
                            self._tuner_explores += 1
                        else:
                            self._tuner_hits += 1
                    # only explore decisions are timed: recording further
                    # samples for an already-converged winner can only lower
                    # its own best time, never flip the decision, so exploit
                    # calls skip the measurement overhead entirely
                    fuse: Optional[bool] = None
                    base = name
                    if name.endswith("+fused"):
                        base = name[:-len("+fused")]
                        fuse = True
                    elif arbitrate:
                        fuse = False
                    backend = next(b for b in pool if b.name == base)
                    return backend, explored, sched, fuse, name
        return (choose_heuristic(op, shape, dtype, model, pool,
                                 operand=operand), False, None, None, "")

    def _run_backend(self, backend: Backend, op: str, shape: Tuple[int, ...],
                     a: np.ndarray, c: np.ndarray, alpha: float,
                     b: Optional[np.ndarray], model: CacheModel,
                     parallel: Optional[str], measured: bool,
                     sched: Optional[str] = None,
                     held: Optional[dict] = None,
                     fuse: Optional[bool] = None,
                     record_name: str = "",
                     density: Optional[str] = None) -> None:
        """Execute through ``backend``, timing the call into the tuner's
        table when it was a tuner explore decision (``sched`` is the cell
        signature, ``record_name`` the candidate name the decision was
        filed under, and ``density`` the structured-operand density bucket
        the decision was scoped to).  A tuner-arbitrated ``fuse`` decision
        travels to ``_plan`` through a thread-local override —
        ``backend.run`` executes synchronously on this thread, and its
        frozen signature cannot carry the flag."""
        self._fuse_local.value = fuse
        try:
            if measured and self.tuner is not None:
                start = self.tuner.timer()
                backend.run(self, op, a, c, alpha, b, model, parallel, held)
                self.tuner.record(op, shape, a.dtype,
                                  record_name or backend.name,
                                  self.tuner.timer() - start, model=model,
                                  sched=sched, density=density)
            else:
                backend.run(self, op, a, c, alpha, b, model, parallel, held)
        finally:
            self._fuse_local.value = None
        run_name = record_name or backend.name
        with self._stats_lock:
            self._backend_runs[run_name] = \
                self._backend_runs.get(run_name, 0) + 1

    # -- scheduling ---------------------------------------------------------
    def _resolve_parallel(self, parallel: Optional[str]) -> str:
        if parallel is None:
            return self.parallel
        if parallel not in _PARALLEL_MODES:
            raise ConfigurationError(f"unknown parallel mode {parallel!r}; "
                                     "expected 'auto', 'dag' or 'off'")
        if parallel == "dag" and not self._dag_capable:
            # "auto" degrades gracefully to sequential replay, but an
            # explicit DAG request on a sequential engine is a caller bug
            raise ConfigurationError(
                "parallel='dag' requires a DAG-capable engine; construct "
                "ExecutionEngine(workers=N) with N > 1 or parallel='dag'")
        return parallel

    def _execute(self, plan: ExecutionPlan, a: np.ndarray, c: np.ndarray,
                 alpha: float, workspace, b: Optional[np.ndarray],
                 parallel: Optional[str]) -> None:
        if plan.fused_steps:
            with self._stats_lock:
                self._fused_steps += plan.fused_steps
            if self._codegen_mode() != "off":
                from . import codegen
                attached = codegen.prepare_plan(plan)
                if attached:
                    with self._stats_lock:
                        self._codegen_kernels += attached
        mode = self._resolve_parallel(parallel)
        use_dag = (self.dag is not None and plan.dag is not None
                   and mode != "off"
                   and (mode == "dag"
                        or (self._auto_workers > 1
                            and plan.n_steps >= _DAG_MIN_STEPS
                            and plan.dag.max_width > 1)))
        if use_dag:
            # "auto" never schedules beyond the host's cores; an explicit
            # "dag" request honours the configured worker count as-is
            cap = self._auto_workers if mode == "auto" else None
            self.dag.execute(plan, a, c, alpha, workspace, b=b,
                             max_workers=cap)
        else:
            with self._stats_lock:
                self._sequential_runs += 1
            execute_plan(plan, a, c, alpha, workspace, b=b)

    # -- A^T A --------------------------------------------------------------
    def matmul_ata(self, a: np.ndarray, c: Optional[np.ndarray] = None,
                   alpha: float = 1.0, *, beta: float = 1.0,
                   algo: AtaAlgo = "auto",
                   cache: Optional[CacheModel] = None,
                   parallel: Optional[ParallelMode] = None) -> np.ndarray:
        """Lower-triangular ``C = alpha * A^T A + beta * C`` via a backend.

        Parameters
        ----------
        a:
            Input matrix of shape ``(m, n)``.
        c:
            Output ``(n, n)`` matrix (allocated as zeros when omitted);
            only its lower triangle is written.
        alpha, beta:
            BLAS-style scaling factors (``beta`` pre-scales ``c``).
        algo:
            ``"auto"`` resolves through the configured backend override,
            the measured tuner (when attached) or the modeled-cost
            heuristic (``syrk`` when the operand fits the cache model, the
            Algorithm 1 plan otherwise).  Any registered backend name
            (``"ata"``, ``"syrk"``, ``"tiled"``, ``"recursive_gemm"``,
            ``"blas_direct"``, …) forces that path.
        cache:
            Cache model for the base-case predicates; defaults to the
            configured model for ``a``'s dtype.
        parallel:
            Per-call scheduling override (``None`` uses the engine's
            mode): ``"off"`` forces sequential replay, ``"dag"`` forces
            DAG scheduling, ``"auto"`` applies the size heuristics.

        ``a`` may also be a scipy sparse matrix or a
        :class:`~repro.engine.sparse.LowRank` operand: dispatch then
        selects among the structured backends (``sparse_gram`` /
        ``densify`` / ``banded_ata`` / ``lowrank_gram``), with the
        measured tuner arbitrating the sparse-vs-densify crossover per
        density bucket.  ``c`` stays a dense ndarray either way.
        """
        kind = operand_kind(a)
        if kind == "dense":
            validate_matrix(a, "A")
        else:
            validate_operand(a, "A")
        m, n = a.shape
        if c is None:
            c = np.zeros((n, n), dtype=a.dtype)
        validate_matrix(c, "C")
        if c.shape != (n, n):
            raise ShapeError(f"C must have shape ({n}, {n}) for A of shape "
                             f"{a.shape}, got {c.shape}")
        if a.dtype != c.dtype:
            raise ShapeError(f"A and C must share a dtype, got {a.dtype} and {c.dtype}")

        model = cache if cache is not None else default_cache_model(a.dtype)
        operand = a if kind != "dense" else None
        density = density_bucket(a) if operand is not None else None
        backend, measured, sched, fuse, record_name = self._resolve_backend(
            "ata", (m, n), a.dtype, model, algo, parallel,
            operand=operand, density=density)
        scale(c, beta)
        self._run_backend(backend, "ata", (m, n), a, c, alpha, None, model,
                          parallel, measured, sched, fuse=fuse,
                          record_name=record_name, density=density)
        if operand is not None:
            with self._stats_lock:
                self._sparse_runs += 1
                self._sparse_nnz += operand_nnz(a)
                if backend.name == "densify":
                    self._densify_crossovers += 1
        return c

    # -- A^T B --------------------------------------------------------------
    def matmul_atb(self, a: np.ndarray, b: np.ndarray,
                   c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
                   algo: AtbAlgo = "auto",
                   cache: Optional[CacheModel] = None,
                   parallel: Optional[ParallelMode] = None) -> np.ndarray:
        """``C = alpha * A^T B + C`` via a backend.

        ``algo="auto"`` resolves through the same precedence as
        :meth:`matmul_ata` (the heuristic picks FastStrassen);
        ``"recursive_gemm"`` forces the classical Algorithm 2 recursion
        and ``"blas_direct"`` a bound vendor ``?gemm``.  ``parallel``
        overrides the engine's scheduling mode per call.

        ``a`` may be a scipy sparse matrix or a
        :class:`~repro.engine.sparse.LowRank` operand (``b`` and ``c``
        stay dense): dispatch selects among the structured backends with
        the tuner arbitrating sparse-vs-densify per density bucket.
        """
        kind = operand_kind(a)
        if kind == "dense":
            validate_atb_operands(a, b)
        else:
            validate_operand(a, "A")
            validate_matrix(b, "B")
            if b.shape[0] != a.shape[0]:
                raise ShapeError("A and B must share their first dimension, "
                                 f"got {a.shape} and {b.shape}")
            if a.dtype != b.dtype:
                raise DTypeError("operands must share a dtype, got "
                                 f"{sorted({str(a.dtype), str(b.dtype)})}")
        m, n = a.shape
        k = b.shape[1]
        if c is None:
            c = np.zeros((n, k), dtype=a.dtype)
        validate_matrix(c, "C")
        if c.shape != (n, k):
            raise ShapeError(f"C must have shape ({n}, {k}), got {c.shape}")
        if c.dtype != a.dtype:
            # the base-case kernels of the direct path enforce this; the
            # plan executor inlines them, so enforce it up front instead of
            # silently computing through a reduced-precision workspace
            raise DTypeError("operands must share a dtype, got "
                             f"{sorted({str(a.dtype), str(c.dtype)})}")

        model = cache if cache is not None else default_cache_model(a.dtype)
        operand = a if kind != "dense" else None
        density = density_bucket(a) if operand is not None else None
        backend, measured, sched, fuse, record_name = self._resolve_backend(
            "atb", (m, n, k), a.dtype, model, algo, parallel,
            operand=operand, density=density)
        self._run_backend(backend, "atb", (m, n, k), a, c, alpha, b, model,
                          parallel, measured, sched, fuse=fuse,
                          record_name=record_name, density=density)
        if operand is not None:
            with self._stats_lock:
                self._sparse_runs += 1
                self._sparse_nnz += operand_nnz(a)
                if backend.name == "densify":
                    self._densify_crossovers += 1
        return c

    # -- out-of-core --------------------------------------------------------
    def matmul_ata_ooc(self, a, c: Optional[np.ndarray] = None,
                       alpha: float = 1.0, *, beta: float = 1.0,
                       algo: AtaAlgo = "auto",
                       cache: Optional[CacheModel] = None,
                       parallel: Optional[ParallelMode] = None,
                       budget: Optional[int] = None,
                       panel_rows: Optional[int] = None,
                       prefetch: Optional[bool] = None,
                       procs: Optional[int] = None) -> np.ndarray:
        """Out-of-core ``C = alpha * A^T A + beta * C``: stream row panels
        of ``a`` (an array, ``np.memmap`` or chunk source) through this
        engine under ``budget`` bytes (default ``Config.memory_budget``).

        Each panel's Gram update is an ordinary :meth:`matmul_ata` call —
        plans, the workspace pool and backend selection are reused at
        panel granularity — accumulated in the deterministic schedule of
        :class:`repro.engine.ooc.ShardedAtA` (see there for the
        bit-identity contract and the prefetch gate).  ``procs`` selects
        the executor: ``0`` runs in-process (the default; also reachable
        via ``Config.farm_procs`` / ``REPRO_FARM_PROCS``), ``N >= 1``
        fans panels out to ``N`` worker processes through
        :class:`repro.engine.farm.PanelFarm` (which ignores
        ``prefetch`` — staging is the parent's job there).
        """
        result, _ = self.run_ooc(a, c, alpha, beta=beta, algo=algo,
                                 cache=cache, parallel=parallel,
                                 budget=budget, panel_rows=panel_rows,
                                 prefetch=prefetch, procs=procs)
        return result

    def run_ooc(self, a, c: Optional[np.ndarray] = None, alpha: float = 1.0,
                *, beta: float = 1.0, algo: AtaAlgo = "auto",
                cache: Optional[CacheModel] = None,
                parallel: Optional[ParallelMode] = None,
                budget: Optional[int] = None,
                panel_rows: Optional[int] = None,
                prefetch: Optional[bool] = None,
                procs: Optional[int] = None):
        """Like :meth:`matmul_ata_ooc` but returns ``(C, run stats)`` —
        ``(C, OocRunStats)`` from the in-process executor (``procs=0``),
        ``(C, FarmRunStats)`` from the multi-process farm (``procs>=1``)."""
        if procs is None:
            procs = get_config().farm_procs
        if procs:
            from .ooc import SparseChunkSource, SparseSource
            if (operand_kind(a) != "dense"
                    or isinstance(a, (SparseSource, SparseChunkSource))):
                raise ShapeError(
                    "the multi-process farm stages panels into dense "
                    "shared-memory arenas and does not accept sparse "
                    "operands; run with procs=0 (in-process streaming) or "
                    "densify first")
            from .farm import PanelFarm
            return PanelFarm(self, procs=procs).run(
                a, c, alpha, beta=beta, algo=algo, cache=cache,
                parallel=parallel, budget=budget, panel_rows=panel_rows)
        from .ooc import ShardedAtA
        return ShardedAtA(self).run(a, c, alpha, beta=beta, algo=algo,
                                    cache=cache, parallel=parallel,
                                    budget=budget, panel_rows=panel_rows,
                                    prefetch=prefetch)

    def _record_ooc(self, stats) -> None:
        """Fold one :class:`~repro.engine.ooc.OocRunStats` into the
        engine's accounting (called by the out-of-core executor)."""
        with self._stats_lock:
            self._ooc_runs += 1
            self._ooc_panels += stats.panels
            self._ooc_resident_high = max(self._ooc_resident_high,
                                          stats.bytes_resident_high)
            self._ooc_budget = stats.budget_bytes

    def _record_farm(self, stats) -> None:
        """Fold one :class:`~repro.engine.farm.FarmRunStats` into the
        engine's accounting (called by the multi-process farm)."""
        with self._stats_lock:
            self._farm_runs += 1
            self._farm_panels += stats.panels
            self._farm_procs = stats.procs
            self._farm_resident_high = max(self._farm_resident_high,
                                           stats.bytes_resident_high)
            self._farm_respawns += stats.respawns
            self._farm_retried_panels += stats.retried_panels
            self._farm_degraded += stats.degraded_panels

    # -- batching -----------------------------------------------------------
    def _batched(self, op: str, items, prepare, algo: str, alpha: float,
                 cache: Optional[CacheModel],
                 parallel: Optional[ParallelMode]) -> List[np.ndarray]:
        """Shared mechanics of :meth:`run_batch` / :meth:`run_batch_atb`.

        ``prepare(item)`` validates one item and returns ``(a, b, shape,
        c)``.  On a DAG-capable engine, plan-executed entries are
        *interleaved*: their step DAGs merge into one cross-entry
        super-DAG (each entry keeps its own output and its own
        pool-acquired workspace — disjoint arena namespaces) so workers
        stay busy across entries, small entries filling the bubbles left
        by large ones; every entry's internal step order is still a
        topological order of its own DAG, so each result is bit-identical
        to the serial path.  Entries the super-DAG cannot carry —
        non-plan backends, tuner explore decisions that must be timed
        individually — run serially exactly as before, with workspaces
        shared per plan key across the whole batch.  The batch counters
        count only completed invocations.
        """
        if algo != "auto":
            get_backend(algo, op)  # reject unknown/unsupported up front
        mode = self._resolve_parallel(parallel)
        can_weave = (self.dag is not None and mode != "off"
                     and (mode == "dag" or self._auto_workers > 1))
        held: dict = {}
        prepared = [prepare(item) for item in items]
        results: List[Optional[np.ndarray]] = [None] * len(prepared)
        woven: List[tuple] = []  # (index, plan, a, b, c, backend_name)
        try:
            for i, (a, b, shape, c) in enumerate(prepared):
                model = cache if cache is not None else default_cache_model(a.dtype)
                backend, measured, sched, fuse, record_name = \
                    self._resolve_backend(op, shape, a.dtype, model, algo,
                                          parallel)
                if (can_weave and not measured
                        and type(backend).run is PlanBackend.run):
                    plan = self._plan(backend.name, backend.kinds[op], shape,
                                      a.dtype, model, fuse=fuse)
                    woven.append((i, plan, a, b, c, backend.name))
                    continue
                self._run_backend(backend, op, shape, a, c, alpha, b,
                                  model, parallel, measured, sched, held=held,
                                  fuse=fuse, record_name=record_name)
                results[i] = c
            interleave = (len(woven) > 1
                          and sum(t[1].n_steps for t in woven) >= _DAG_MIN_STEPS
                          and all(t[1].dag is not None for t in woven))
            if interleave:
                self._run_interleaved(woven, alpha, mode)
            else:
                # too little work to interleave: replay the held-workspace
                # serial path (exactly what PlanBackend.run does)
                for i, plan, a, b, c, name in woven:
                    workspace = None
                    if plan.needs_workspace:
                        workspace = held.get(plan.key)
                        if workspace is None:
                            workspace = held[plan.key] = \
                                self.pool.acquire(plan, a.dtype)
                    self._execute(plan, a, c, alpha, workspace, b, parallel)
            for i, plan, a, b, c, name in woven:
                results[i] = c
                with self._stats_lock:
                    self._backend_runs[name] = \
                        self._backend_runs.get(name, 0) + 1
            with self._stats_lock:
                self._batch_calls += 1
                self._batch_items += len(results)
        finally:
            for workspace in held.values():
                self.pool.release(workspace)
        return results

    def _run_interleaved(self, woven: List[tuple], alpha: float,
                         mode: str) -> None:
        """Execute plan-backed batch entries as one cross-entry super-DAG."""
        for _, plan, a, b, c, _ in woven:
            if plan.fused_steps:
                with self._stats_lock:
                    self._fused_steps += plan.fused_steps
                if self._codegen_mode() != "off":
                    from . import codegen
                    attached = codegen.prepare_plan(plan)
                    if attached:
                        with self._stats_lock:
                            self._codegen_kernels += attached
        cap = self._auto_workers if mode == "auto" else None
        entries = [(plan, a, b, c) for _, plan, a, b, c, _ in woven]
        self.dag.execute_batch(entries, alpha,
                               acquire=self.pool.acquire,
                               release=self.pool.release,
                               max_workers=cap)
        with self._stats_lock:
            self._interleaved_batches += 1
            self._interleaved_items += len(entries)

    def run_batch(self, matrices: Sequence[np.ndarray], *,
                  algo: AtaAlgo = "auto", alpha: float = 1.0,
                  cache: Optional[CacheModel] = None,
                  parallel: Optional[ParallelMode] = None) -> List[np.ndarray]:
        """Compute ``alpha * A^T A`` for every matrix in ``matrices``.

        Matrices resolving to the same plan are executed against a single
        checked-out workspace, so a homogeneous batch compiles once and
        allocates once no matter its length.  Results are identical to
        calling :meth:`matmul_ata` in a loop.  ``parallel`` overrides the
        engine's scheduling mode for every matrix in the batch.
        """
        def prepare(a: np.ndarray):
            validate_matrix(a, "A")
            m, n = a.shape
            return a, None, (m, n), np.zeros((n, n), dtype=a.dtype)

        return self._batched("ata", matrices, prepare, algo, alpha, cache,
                             parallel)

    def run_batch_atb(self, pairs: Sequence[Tuple[np.ndarray, np.ndarray]], *,
                      algo: AtbAlgo = "auto", alpha: float = 1.0,
                      cache: Optional[CacheModel] = None,
                      parallel: Optional[ParallelMode] = None) -> List[np.ndarray]:
        """Compute ``alpha * A^T B`` for every ``(A, B)`` pair in ``pairs``.

        The ``atb`` counterpart of :meth:`run_batch` — and the primitive
        the serving layer coalesces concurrent ``atb`` requests into: pairs
        resolving to the same plan share one checked-out workspace, so a
        homogeneous batch compiles once and allocates once.  Results are
        identical to calling :meth:`matmul_atb` in a loop.
        """
        def prepare(pair):
            a, b = pair
            validate_atb_operands(a, b)
            m, n = a.shape
            k = b.shape[1]
            return a, b, (m, n, k), np.zeros((n, k), dtype=a.dtype)

        return self._batched("atb", pairs, prepare, algo, alpha, cache,
                             parallel)

    # -- maintenance --------------------------------------------------------
    def stats(self) -> EngineStats:
        """Snapshot the plan-cache, workspace-pool, DAG-scheduler, backend
        and tuner accounting."""
        with self._stats_lock:
            backend_runs = dict(self._backend_runs)
        return EngineStats(
            plan_hits=self.plans.hits,
            plan_misses=self.plans.misses,
            plan_invalidations=self.plans.invalidations,
            plan_evictions=self.plans.evictions,
            cached_plans=len(self.plans),
            pool_allocations=self.pool.allocations,
            pool_reuses=self.pool.reuses,
            pool_idle=self.pool.idle_count,
            pool_evictions=self.pool.evictions,
            dag_runs=self.dag.runs if self.dag is not None else 0,
            dag_steps=self.dag.steps_retired if self.dag is not None else 0,
            sequential_runs=self._sequential_runs,
            backend_runs=backend_runs,
            tuner_hits=self._tuner_hits,
            tuner_explores=self._tuner_explores,
            batch_calls=self._batch_calls,
            batch_items=self._batch_items,
            ooc_runs=self._ooc_runs,
            ooc_panels=self._ooc_panels,
            ooc_bytes_resident_high=self._ooc_resident_high,
            ooc_budget_bytes=self._ooc_budget,
            farm_runs=self._farm_runs,
            farm_panels=self._farm_panels,
            farm_procs=self._farm_procs,
            farm_bytes_resident_high=self._farm_resident_high,
            farm_respawns=self._farm_respawns,
            farm_retried_panels=self._farm_retried_panels,
            farm_degraded=self._farm_degraded,
            fused_steps=self._fused_steps,
            codegen_kernels=self._codegen_kernels,
            interleaved_batches=self._interleaved_batches,
            interleaved_items=self._interleaved_items,
            pool_bytes_high=self.pool.bytes_high_water,
            sparse_runs=self._sparse_runs,
            densify_crossovers=self._densify_crossovers,
            sparse_nnz=self._sparse_nnz,
        )

    def clear(self) -> None:
        """Drop all cached plans and pooled workspaces (stats and tuner
        table retained)."""
        self.plans.invalidate()
        self.pool.clear()

    def close(self) -> None:
        """Release the DAG executor's helper threads and flush the tuner
        table (engine stays usable; threads are recreated on the next
        parallel execution)."""
        if self.dag is not None:
            self.dag.shutdown()
        if self.tuner is not None:
            self.tuner.flush()


#: The process-wide engine serving the library's rewired call sites.  Its
#: tuner attachment reads ``Config.tuner_mode`` / ``REPRO_TUNER`` once at
#: import: ``"frozen"`` is the warm-table determinism story — repeated
#: runs over a persisted table make identical backend choices (see
#: :class:`repro.engine.tuner.BackendTuner`).
_DEFAULT_ENGINE = ExecutionEngine(tuner=get_config().tuner_mode)


def default_engine() -> ExecutionEngine:
    """Return the process-wide :class:`ExecutionEngine` instance."""
    return _DEFAULT_ENGINE


def matmul_ata(a: np.ndarray, c: Optional[np.ndarray] = None,
               alpha: float = 1.0, *, beta: float = 1.0,
               algo: AtaAlgo = "auto",
               cache: Optional[CacheModel] = None) -> np.ndarray:
    """Module-level convenience: :meth:`ExecutionEngine.matmul_ata` on the
    default engine."""
    return _DEFAULT_ENGINE.matmul_ata(a, c, alpha, beta=beta, algo=algo, cache=cache)


def matmul_atb(a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray] = None,
               alpha: float = 1.0, *, algo: AtbAlgo = "auto",
               cache: Optional[CacheModel] = None) -> np.ndarray:
    """Module-level convenience: :meth:`ExecutionEngine.matmul_atb` on the
    default engine."""
    return _DEFAULT_ENGINE.matmul_atb(a, b, c, alpha, algo=algo, cache=cache)


def run_batch(matrices: Sequence[np.ndarray], *, algo: AtaAlgo = "auto",
              alpha: float = 1.0,
              cache: Optional[CacheModel] = None) -> List[np.ndarray]:
    """Module-level convenience: :meth:`ExecutionEngine.run_batch` on the
    default engine."""
    return _DEFAULT_ENGINE.run_batch(matrices, algo=algo, alpha=alpha, cache=cache)


def run_batch_atb(pairs: Sequence[Tuple[np.ndarray, np.ndarray]], *,
                  algo: AtbAlgo = "auto", alpha: float = 1.0,
                  cache: Optional[CacheModel] = None) -> List[np.ndarray]:
    """Module-level convenience: :meth:`ExecutionEngine.run_batch_atb` on
    the default engine."""
    return _DEFAULT_ENGINE.run_batch_atb(pairs, algo=algo, alpha=alpha, cache=cache)
