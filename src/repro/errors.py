"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library-specific failures without masking programming
errors (``TypeError``, ``KeyError``…) coming from user code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """Raised when matrix operands have incompatible or invalid shapes."""


class DTypeError(ReproError, TypeError):
    """Raised when matrix operands have unsupported or mismatched dtypes."""


class LayoutError(ReproError, ValueError):
    """Raised when an array does not satisfy a required memory layout.

    The recursive kernels operate on views of the caller's arrays; some
    entry points require C-contiguous (row-major) storage in order for the
    quadrant views of Eq. (1) of the paper to be cheap, strided views.
    """


class WorkspaceError(ReproError, RuntimeError):
    """Raised when a pre-allocated Strassen workspace is too small.

    See Section 3.3 of the paper: ``FastStrassen`` pre-allocates the three
    scratch matrices ``M``, ``P`` and ``Q`` once; the recursion carves
    sub-views out of them.  If a caller supplies an explicitly-sized
    workspace that cannot accommodate the recursion this error is raised
    instead of silently reallocating.
    """


class SchedulerError(ReproError, RuntimeError):
    """Raised when a task tree cannot be built or assigned consistently."""


class CommunicatorError(ReproError, RuntimeError):
    """Raised by the simulated MPI layer (:mod:`repro.distributed.simmpi`).

    Typical causes: messages addressed to ranks outside the communicator,
    mismatched collective participation, or use of a communicator after it
    has been shut down.
    """


class ConfigurationError(ReproError, ValueError):
    """Raised when a configuration value is out of its legal range."""


class QueueFullError(ReproError, RuntimeError):
    """Raised by the serving front-end when admission control rejects a
    request.

    The :class:`repro.serve.Server` bounds its in-flight work (pending in a
    coalescing queue or executing); a submit beyond that bound fails
    immediately with this error instead of queueing unboundedly, so
    overload surfaces as backpressure the client can react to (retry,
    shed, route elsewhere) rather than as latency collapse.
    """


class FairnessError(QueueFullError):
    """Raised when a single client's share of the admission budget is
    exhausted.

    With ``Config.serve_fair_share < 1`` the server bounds how much of
    ``max_inflight`` any one client id may occupy, so a flooding client
    saturates *its share*, not the whole admission window — companions
    keep being admitted.  Subclassing :class:`QueueFullError` keeps the
    client contract uniform: the error still means "back off and retry"
    (and :func:`repro.serve.retry` already retries it); it is a distinct
    type so tests and dashboards can tell per-client throttling from
    server-wide saturation.
    """


class ProtocolError(ReproError, RuntimeError):
    """Raised by the serving wire protocol on malformed or incompatible
    frames.

    Covers framing violations (oversized or truncated frames, connections
    closed mid-frame), handshake failures (missing/unsupported protocol
    version), undecodable headers and unknown frame operations — the
    errors of the *transport conversation*, as opposed to errors of the
    *request* (shape/dtype/backpressure), which are returned to the
    client as typed error frames and re-raised under their own classes.
    """


class ServerClosedError(ReproError, RuntimeError):
    """Raised when submitting to a :class:`repro.serve.Server` that is
    closing or closed.

    ``close()`` drains admitted work to completion but admits nothing new;
    requests racing the shutdown get this error rather than silently
    joining a queue that will never flush.
    """


class BudgetError(ReproError, RuntimeError):
    """Raised by the out-of-core executor when the memory budget cannot
    hold even one panel's working set.

    :class:`repro.engine.ooc.ShardedAtA` streams row panels of ``A``
    through the engine under ``Config.memory_budget``; the resident set of
    one panel iteration is the ``n x n`` output ``C`` plus the panel bytes
    (doubled while prefetching).  A budget below that floor cannot be met
    by any schedule, so the executor fails up front with this error —
    naming the shortfall — instead of silently overshooting the budget.
    """


class FarmError(ReproError, RuntimeError):
    """Raised when a multi-process panel farm cannot complete a run.

    :class:`repro.engine.farm.PanelFarm` fans panels out to worker
    processes over shared-memory arenas.  Worker loss is no longer fatal
    by itself: a worker that dies (killed by the OS, ``os._exit``, a
    segfaulting extension) or reports a failure is respawned and its
    panel replayed, bounded by ``Config.farm_max_retries``; with retries
    exhausted the farm degrades to finishing the remaining panels
    in-process on the same schedule.  This error is raised only when
    that last line of defence fails too — naming the panel in flight
    and carrying the underlying failure — instead of hanging the parent
    on a result that will never arrive.  Budget infeasibility keeps
    raising :class:`BudgetError`; this error is strictly about the
    process pool and its recovery path.
    """


class DeadlineError(ReproError, TimeoutError):
    """Raised when a serving request's deadline expires before its result.

    ``Server.submit(..., timeout=...)`` (default
    ``Config.serve_default_timeout_ms``) bounds how long a request may
    wait; a request whose deadline passes is settled with this error and
    dropped from its coalescing queue through the same dead-waiter path
    that handles cancellation, so an expired request can never poison the
    batch its companions form.  The server ledger counts these under
    ``expired``.
    """


class FaultInjected(ReproError, RuntimeError):
    """Raised by an armed fault-injection site (:mod:`repro.faults`).

    Never raised in production configurations: sites are zero-overhead
    no-ops unless a fault spec (``Config.faults`` / ``REPRO_FAULTS``)
    arms them.  Carrying a dedicated type keeps injected chaos
    distinguishable from organic failures in tests and logs.
    """


class BenchmarkError(ReproError, RuntimeError):
    """Raised by the benchmark harness when an experiment is ill-defined."""
