"""Applications of the A^T A product motivated in the paper's introduction."""

from .covariance import PCAResult, correlation_matrix, covariance_matrix, pca
from .gram_schmidt import (
    modified_gram_schmidt,
    orthogonality_defect,
    project_onto_columns,
    reorthogonalize,
)
from .heat_kernel import (
    LaplacianSpectrum,
    diffuse,
    grid_laplacian,
    heat_kernel,
    heat_kernel_signature,
    laplacian_from_edges,
    path_laplacian,
    spectral_decomposition,
)
from .least_squares import LeastSquaresResult, gram_matrix, solve_normal_equations
from .svd import GramSVD, low_rank_approximation, singular_values, svd_via_ata

__all__ = [
    "PCAResult",
    "correlation_matrix",
    "covariance_matrix",
    "pca",
    "modified_gram_schmidt",
    "orthogonality_defect",
    "project_onto_columns",
    "reorthogonalize",
    "LaplacianSpectrum",
    "diffuse",
    "grid_laplacian",
    "heat_kernel",
    "heat_kernel_signature",
    "laplacian_from_edges",
    "path_laplacian",
    "spectral_decomposition",
    "LeastSquaresResult",
    "gram_matrix",
    "solve_normal_equations",
    "GramSVD",
    "low_rank_approximation",
    "singular_values",
    "svd_via_ata",
]
