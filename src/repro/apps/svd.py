"""Singular value decomposition via the A^T A eigen-problem (intro use case #3).

The paper recalls that the SVD of ``A`` can be obtained by studying the
eigen-problem of ``A^T A`` (and ``A A^T``): if ``A = U Σ V^T`` then
``A^T A = V Σ² V^T``.  This module implements that classical route with the
Gram matrix built by the fast AtA algorithm:

1. ``G = A^T A`` via :func:`repro.core.ata.ata` (lower triangle, then
   mirrored);
2. symmetric eigendecomposition ``G = V Λ V^T`` (``scipy.linalg.eigh``);
3. ``σ_i = sqrt(max(λ_i, 0))`` and ``U = A V Σ^{-1}`` for the non-null
   singular values.

This route squares the condition number (singular values below
``sqrt(eps) ‖A‖`` lose accuracy), which is documented and tested; it is
nevertheless the method of choice when only the dominant part of the
spectrum matters or when ``A^T A`` is needed anyway — exactly the scenario
the paper targets.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from ..blas.kernels import symmetrize_from_lower, validate_matrix
from ..core.ata import ata
from ..errors import ShapeError

__all__ = ["GramSVD", "svd_via_ata", "singular_values", "low_rank_approximation"]


@dataclasses.dataclass
class GramSVD:
    """SVD factors computed through the Gram matrix."""

    u: np.ndarray
    s: np.ndarray
    vt: np.ndarray

    def reconstruct(self, rank: Optional[int] = None) -> np.ndarray:
        """``U Σ V^T`` truncated to ``rank`` (full reconstruction when None)."""
        r = len(self.s) if rank is None else min(rank, len(self.s))
        return (self.u[:, :r] * self.s[:r]) @ self.vt[:r]


def svd_via_ata(a: np.ndarray, *, rank: Optional[int] = None,
                rcond: float = 1e-12) -> GramSVD:
    """Thin SVD of ``a`` through the eigen-decomposition of ``A^T A``.

    Parameters
    ----------
    a:
        Matrix of shape ``(m, n)`` (any aspect ratio).
    rank:
        Keep only the ``rank`` largest singular triplets (all by default).
    rcond:
        Relative cut-off below which singular values are treated as zero
        when forming the left vectors (their columns of ``U`` are left as
        zero vectors; they do not contribute to the reconstruction).
    """
    validate_matrix(a, "A")
    m, n = a.shape
    work = np.ascontiguousarray(a, dtype=np.float64)
    gram = symmetrize_from_lower(ata(work))
    # eigh returns ascending eigenvalues; we want descending singular values
    eigvals, eigvecs = scipy.linalg.eigh(gram)
    order = np.argsort(eigvals)[::-1]
    eigvals = eigvals[order]
    v = eigvecs[:, order]
    s = np.sqrt(np.clip(eigvals, 0.0, None))

    keep = len(s) if rank is None else min(rank, len(s))
    s = s[:keep]
    v = v[:, :keep]

    cutoff = rcond * (s[0] if len(s) else 0.0)
    u = np.zeros((m, keep), dtype=np.float64)
    nonzero = s > cutoff
    if np.any(nonzero):
        u[:, nonzero] = (work @ v[:, nonzero]) / s[nonzero]
    # Columns associated with (numerically) zero singular values are left as
    # zero vectors: they contribute nothing to U Σ V^T, and a wide matrix
    # (n > m) necessarily has more of them than the column space can hold.

    return GramSVD(u=u.astype(a.dtype, copy=False),
                   s=s.astype(a.dtype, copy=False),
                   vt=v.T.astype(a.dtype, copy=False))


def singular_values(a: np.ndarray) -> np.ndarray:
    """Singular values of ``a`` (descending), via the Gram matrix."""
    return svd_via_ata(a).s


def low_rank_approximation(a: np.ndarray, rank: int) -> Tuple[np.ndarray, float]:
    """Best rank-``rank`` approximation (via the Gram SVD) and its
    Frobenius-norm error."""
    if rank < 1:
        raise ShapeError(f"rank must be >= 1, got {rank}")
    decomposition = svd_via_ata(a, rank=rank)
    approx = decomposition.reconstruct()
    err = float(np.linalg.norm(np.asarray(a, dtype=np.float64) - approx))
    return approx.astype(a.dtype, copy=False), err
