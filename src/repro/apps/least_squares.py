"""Least-squares solving through the normal equations (intro use case #1).

The paper motivates A^T A with the classical normal-equation approach to
the least squares problem: to solve ``min_x ||A x - b||_2`` for an
over-determined system, left-multiply by ``A^T`` and solve the square SPD
system

    (A^T A) x = A^T b.

This module builds the Gram matrix with the fast :func:`repro.core.ata.ata`
algorithm (optionally with the parallel variants), factors it with a
Cholesky decomposition (the product is symmetric positive semi-definite)
and solves.  It also reports the residual and, optionally, applies Tikhonov
regularisation for rank-deficient systems.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

import numpy as np
import scipy.linalg

from ..blas.kernels import symmetrize_from_lower, validate_matrix
from ..distributed.ata_distributed import ata_distributed
from ..engine import matmul_ata
from ..errors import ShapeError
from ..parallel.ata_shared import ata_shared

__all__ = ["LeastSquaresResult", "solve_normal_equations", "gram_matrix"]

Backend = Literal["sequential", "shared", "distributed"]


@dataclasses.dataclass
class LeastSquaresResult:
    """Solution of a normal-equation least squares solve."""

    x: np.ndarray
    residual_norm: float
    gram_condition: float
    backend: Backend

    @property
    def solution(self) -> np.ndarray:
        return self.x


def gram_matrix(a: np.ndarray, *, backend: Backend = "sequential",
                workers: int = 4, regularization: float = 0.0) -> np.ndarray:
    """The full symmetric Gram matrix ``A^T A (+ λ I)`` via the AtA family.

    Parameters
    ----------
    a:
        Design matrix of shape ``(m, n)``.
    backend:
        Which AtA implementation computes the product: ``"sequential"``
        (Algorithm 1), ``"shared"`` (AtA-S) or ``"distributed"`` (AtA-D on
        the simulated MPI layer).
    workers:
        Thread / rank count for the parallel backends.
    regularization:
        Tikhonov parameter λ added to the diagonal.
    """
    validate_matrix(a, "A")
    if backend == "sequential":
        # Engine-routed: repeated solves over same-shaped design matrices
        # reuse the cached recursion plan and pooled workspace.
        lower = matmul_ata(a)
    elif backend == "shared":
        lower = ata_shared(a, threads=workers)
    elif backend == "distributed":
        lower = ata_distributed(a, processes=workers)
    else:
        raise ShapeError(f"unknown backend {backend!r}")
    gram = symmetrize_from_lower(np.array(lower, copy=True))
    if regularization:
        gram[np.diag_indices_from(gram)] += regularization
    return gram


def solve_normal_equations(a: np.ndarray, b: np.ndarray, *,
                           backend: Backend = "sequential",
                           workers: int = 4,
                           regularization: float = 0.0,
                           ) -> LeastSquaresResult:
    """Solve ``min_x ||A x - b||`` through ``(A^T A) x = A^T b``.

    Parameters
    ----------
    a:
        Design matrix ``(m, n)`` with ``m >= n`` (over-determined) or
        ``m < n`` (under-determined; regularisation is then recommended).
    b:
        Right-hand side of length ``m`` (or ``(m, q)`` for multiple RHS).
    backend, workers:
        Which AtA implementation builds the Gram matrix.
    regularization:
        Optional Tikhonov λ (``λ > 0`` guarantees positive definiteness).

    Returns
    -------
    LeastSquaresResult
    """
    validate_matrix(a, "A")
    b = np.asarray(b, dtype=a.dtype)
    if b.shape[0] != a.shape[0]:
        raise ShapeError(f"b must have {a.shape[0]} rows, got {b.shape}")

    gram = gram_matrix(a, backend=backend, workers=workers,
                       regularization=regularization)
    rhs = a.T @ b

    try:
        cho = scipy.linalg.cho_factor(gram, lower=True)
        x = scipy.linalg.cho_solve(cho, rhs)
    except scipy.linalg.LinAlgError:
        # semi-definite Gram matrix (rank-deficient A): fall back to a
        # pseudo-inverse solve, which is what practitioners do.
        x = np.linalg.lstsq(gram, rhs, rcond=None)[0]

    residual = float(np.linalg.norm(a @ x - b))
    cond = float(np.linalg.cond(gram))
    return LeastSquaresResult(x=x, residual_norm=residual,
                              gram_condition=cond, backend=backend)
