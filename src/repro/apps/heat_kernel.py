"""Discrete heat kernel via the A A^T product (intro use case #4).

The paper's introduction cites discrete exterior calculus: the discrete
heat kernel of a mesh / graph Laplacian ``L = Φ Λ Φ^T`` is

    K(t) = Φ exp(-Λ t) Φ^T = (Φ E(t)^{1/2}) (Φ E(t)^{1/2})^T,

so it can be obtained as a matrix-times-its-transpose product of
``B = Φ E(t)^{1/2}`` — exactly the operation AtA accelerates.

This module builds graph Laplacians for a few synthetic domains (path,
grid, or any networkx graph when the optional dependency is present),
computes the spectral decomposition, and evaluates the heat kernel through
:func:`repro.core.ata.aat` (the A A^T variant of the algorithm).  Helper
functions expose the standard uses of the kernel: heat diffusion of an
initial condition and the heat-kernel signature (HKS) used in shape
analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

import numpy as np
import scipy.linalg

from ..blas.kernels import symmetrize_from_lower, validate_matrix
from ..core.ata import ata
from ..errors import ShapeError

__all__ = [
    "LaplacianSpectrum",
    "grid_laplacian",
    "path_laplacian",
    "laplacian_from_edges",
    "spectral_decomposition",
    "heat_kernel",
    "diffuse",
    "heat_kernel_signature",
]


@dataclasses.dataclass
class LaplacianSpectrum:
    """Eigen-decomposition ``L = Φ Λ Φ^T`` of a graph Laplacian."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray  # columns are Φ

    @property
    def size(self) -> int:
        return self.eigenvalues.shape[0]


def laplacian_from_edges(n_vertices: int, edges: Iterable[tuple[int, int]],
                         weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Combinatorial (weighted) graph Laplacian from an edge list."""
    lap = np.zeros((n_vertices, n_vertices), dtype=np.float64)
    weights_list = list(weights) if weights is not None else None
    for idx, (u, v) in enumerate(edges):
        if not (0 <= u < n_vertices and 0 <= v < n_vertices):
            raise ShapeError(f"edge ({u}, {v}) out of range for {n_vertices} vertices")
        w = weights_list[idx] if weights_list is not None else 1.0
        lap[u, u] += w
        lap[v, v] += w
        lap[u, v] -= w
        lap[v, u] -= w
    return lap


def path_laplacian(n: int) -> np.ndarray:
    """Laplacian of a path graph with ``n`` vertices (1-D chain)."""
    if n < 1:
        raise ShapeError(f"need at least one vertex, got {n}")
    return laplacian_from_edges(n, [(i, i + 1) for i in range(n - 1)])


def grid_laplacian(rows: int, cols: int) -> np.ndarray:
    """Laplacian of a ``rows x cols`` 4-neighbour grid graph."""
    if rows < 1 or cols < 1:
        raise ShapeError(f"grid extents must be positive, got ({rows}, {cols})")
    edges = []
    def vid(r: int, c: int) -> int:
        return r * cols + c
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return laplacian_from_edges(rows * cols, edges)


def spectral_decomposition(laplacian: np.ndarray) -> LaplacianSpectrum:
    """Full symmetric eigen-decomposition of a Laplacian matrix."""
    validate_matrix(laplacian, "L")
    if laplacian.shape[0] != laplacian.shape[1]:
        raise ShapeError(f"Laplacian must be square, got {laplacian.shape}")
    eigenvalues, eigenvectors = scipy.linalg.eigh(laplacian)
    eigenvalues = np.clip(eigenvalues, 0.0, None)   # remove tiny negatives
    return LaplacianSpectrum(eigenvalues=eigenvalues, eigenvectors=eigenvectors)


def heat_kernel(spectrum: LaplacianSpectrum, t: float, *, truncate: Optional[int] = None
                ) -> np.ndarray:
    """The heat kernel ``K(t) = (Φ E^{1/2})(Φ E^{1/2})^T`` via the AtA family.

    Parameters
    ----------
    spectrum:
        Laplacian eigen-decomposition.
    t:
        Diffusion time (``t >= 0``).
    truncate:
        Use only the ``truncate`` smallest eigen-pairs (spectral
        truncation), the common practice for large meshes.
    """
    if t < 0:
        raise ShapeError(f"diffusion time must be non-negative, got {t}")
    k = spectrum.size if truncate is None else min(truncate, spectrum.size)
    phi = spectrum.eigenvectors[:, :k]
    decay = np.exp(-spectrum.eigenvalues[:k] * t)
    b = phi * np.sqrt(decay)            # B = Φ E(t)^{1/2}
    # K = B B^T  ==  (B^T)^T (B^T): feed B^T to AtA.
    bt = np.ascontiguousarray(b.T)
    lower = ata(bt)
    return symmetrize_from_lower(lower)


def diffuse(spectrum: LaplacianSpectrum, initial: np.ndarray, t: float, *,
            truncate: Optional[int] = None) -> np.ndarray:
    """Diffuse an initial heat distribution: ``u(t) = K(t) u(0)``."""
    initial = np.asarray(initial, dtype=np.float64)
    if initial.shape[0] != spectrum.size:
        raise ShapeError(
            f"initial condition must have {spectrum.size} entries, got {initial.shape}")
    return heat_kernel(spectrum, t, truncate=truncate) @ initial


def heat_kernel_signature(spectrum: LaplacianSpectrum, times: Sequence[float], *,
                          truncate: Optional[int] = None) -> np.ndarray:
    """Heat-kernel signature: ``HKS(v, t) = K_t(v, v)`` for each vertex and
    each time in ``times`` — the diagonal of the kernel, a classic
    multi-scale shape descriptor."""
    sigs = []
    for t in times:
        sigs.append(np.diag(heat_kernel(spectrum, float(t), truncate=truncate)))
    return np.column_stack(sigs)
