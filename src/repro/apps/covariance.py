"""Covariance / correlation matrices and PCA via the A^T A product.

The most common large-scale consumer of ``A^T A`` in data analysis is the
sample covariance matrix: for a data matrix ``X`` with ``m`` observations in
rows and ``n`` features in columns,

    cov(X) = (X - mean)^T (X - mean) / (m - 1)

is exactly a matrix-times-its-transpose product of the centred data — the
operation the paper accelerates.  This module builds covariance and
correlation matrices with the AtA family (sequential, shared-memory or
distributed backend) and implements principal component analysis on top of
them, mirroring how practitioners actually use the kernel.
"""

from __future__ import annotations

import dataclasses
from typing import Literal, Optional

import numpy as np
import scipy.linalg

from ..blas.kernels import symmetrize_from_lower, validate_matrix
from ..distributed.ata_distributed import ata_distributed
from ..engine import matmul_ata
from ..errors import ShapeError
from ..parallel.ata_shared import ata_shared

__all__ = ["covariance_matrix", "correlation_matrix", "PCAResult", "pca"]

Backend = Literal["sequential", "shared", "distributed"]


def _gram_lower(x: np.ndarray, backend: Backend, workers: int) -> np.ndarray:
    if backend == "sequential":
        # Routed through the execution engine: the compiled plan is cached,
        # so repeated covariance builds over same-shaped data reuse both the
        # recursion structure and the pooled workspace.
        return matmul_ata(x)
    if backend == "shared":
        return ata_shared(x, threads=workers)
    if backend == "distributed":
        return ata_distributed(x, processes=workers)
    raise ShapeError(f"unknown backend {backend!r}")


def covariance_matrix(x: np.ndarray, *, ddof: int = 1,
                      backend: Backend = "sequential", workers: int = 4,
                      assume_centered: bool = False) -> np.ndarray:
    """Sample covariance matrix of the rows of ``x`` (observations x features).

    Parameters
    ----------
    x:
        Data matrix of shape ``(m, n)``: ``m`` observations of ``n`` features.
    ddof:
        Delta degrees of freedom; the divisor is ``m - ddof`` (1 gives the
        unbiased estimator, 0 the maximum-likelihood one).
    backend, workers:
        Which AtA implementation computes the Gram matrix of the centred
        data.
    assume_centered:
        Skip mean removal when the caller guarantees zero-mean columns.
    """
    validate_matrix(x, "X")
    m, _ = x.shape
    if m - ddof <= 0:
        raise ShapeError(f"need more than {ddof} observations, got {m}")
    work = np.array(x, dtype=np.float64, copy=True)
    if not assume_centered:
        work -= work.mean(axis=0, keepdims=True)
    lower = _gram_lower(np.ascontiguousarray(work), backend, workers)
    cov = symmetrize_from_lower(np.array(lower, copy=True))
    cov /= (m - ddof)
    return cov.astype(x.dtype, copy=False)


def correlation_matrix(x: np.ndarray, *, backend: Backend = "sequential",
                       workers: int = 4, eps: float = 1e-12) -> np.ndarray:
    """Pearson correlation matrix of the columns of ``x``.

    Columns with (numerically) zero variance get zero correlation with every
    other column and unit self-correlation.
    """
    cov = covariance_matrix(x, backend=backend, workers=workers).astype(np.float64)
    std = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    safe = np.where(std > eps, std, 1.0)
    corr = cov / np.outer(safe, safe)
    degenerate = std <= eps
    if np.any(degenerate):
        corr[degenerate, :] = 0.0
        corr[:, degenerate] = 0.0
    np.fill_diagonal(corr, 1.0)
    corr = np.clip(corr, -1.0, 1.0)
    return corr.astype(x.dtype, copy=False)


@dataclasses.dataclass
class PCAResult:
    """Principal component analysis computed through the covariance matrix."""

    components: np.ndarray          #: (n_components, n_features), rows orthonormal
    explained_variance: np.ndarray  #: eigenvalues of the covariance matrix
    explained_variance_ratio: np.ndarray
    mean: np.ndarray

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project data into the principal-component space."""
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean) @ self.components.T

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Map component scores back to the original feature space."""
        scores = np.asarray(scores, dtype=np.float64)
        return scores @ self.components + self.mean

    @property
    def n_components(self) -> int:
        return self.components.shape[0]


def pca(x: np.ndarray, n_components: Optional[int] = None, *,
        backend: Backend = "sequential", workers: int = 4) -> PCAResult:
    """Principal component analysis via the AtA-built covariance matrix.

    Parameters
    ----------
    x:
        Data matrix ``(m observations, n features)``.
    n_components:
        Number of leading components to keep (all by default).

    Notes
    -----
    The covariance route squares the condition number compared to an SVD of
    the centred data; it is the standard choice when ``n`` is modest and the
    covariance matrix is needed anyway — exactly the regime where a fast
    ``A^T A`` kernel pays off.
    """
    validate_matrix(x, "X")
    m, n = x.shape
    keep = n if n_components is None else int(n_components)
    if not 1 <= keep <= n:
        raise ShapeError(f"n_components must be in [1, {n}], got {n_components}")

    mean = np.asarray(x, dtype=np.float64).mean(axis=0)
    cov = covariance_matrix(x, backend=backend, workers=workers).astype(np.float64)
    eigvals, eigvecs = scipy.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.clip(eigvals[order], 0.0, None)
    eigvecs = eigvecs[:, order]

    total = float(eigvals.sum()) or 1.0
    return PCAResult(
        components=eigvecs[:, :keep].T,
        explained_variance=eigvals[:keep],
        explained_variance_ratio=eigvals[:keep] / total,
        mean=mean,
    )
