"""Gram–Schmidt orthogonalisation with A^T A orthogonality checks
(intro use case #2).

The paper notes that ``A A^T`` / ``A^T A`` is "a straightforward, yet
effective, method to check for orthogonality or to project vectors onto
the space spanned by the columns of A", and that the product is repeatedly
computed inside Gram–Schmidt-style procedures.

This module provides:

* :func:`modified_gram_schmidt` — a numerically robust MGS producing an
  orthonormal basis ``Q`` of the column space of ``A``;
* :func:`orthogonality_defect` — ``‖Q^T Q − I‖_F`` where ``Q^T Q`` is
  computed with the fast AtA algorithm (the check the paper describes);
* :func:`project_onto_columns` — projection of vectors onto ``range(A)``
  using the Gram matrix, again built with AtA;
* :func:`reorthogonalize` — one pass of iterative refinement driven by the
  AtA-computed defect, the standard "twice is enough" trick.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..blas.kernels import symmetrize_from_lower, validate_matrix
from ..engine import matmul_ata
from ..errors import ShapeError

__all__ = [
    "modified_gram_schmidt",
    "orthogonality_defect",
    "project_onto_columns",
    "reorthogonalize",
]


def modified_gram_schmidt(a: np.ndarray, *, drop_tol: float = 1e-12
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Modified Gram–Schmidt factorisation ``A = Q R``.

    Columns whose remaining norm falls below ``drop_tol`` (linearly
    dependent directions) are dropped from ``Q``.

    Returns
    -------
    (Q, R):
        ``Q`` of shape ``(m, r)`` with orthonormal columns and ``R`` of
        shape ``(r, n)`` upper trapezoidal, with ``r`` the numerical rank.
    """
    validate_matrix(a, "A")
    m, n = a.shape
    v = np.array(a, dtype=np.result_type(a.dtype, np.float64), copy=True)
    q_cols = []
    r_rows = []
    for j in range(n):
        norm = float(np.linalg.norm(v[:, j]))
        if norm <= drop_tol:
            continue
        q = v[:, j] / norm
        coeffs = q @ v
        coeffs[j] = norm
        v -= np.outer(q, q @ v)
        v[:, j] = 0.0
        q_cols.append(q)
        r_rows.append(coeffs)
    if not q_cols:
        return np.zeros((m, 0), dtype=a.dtype), np.zeros((0, n), dtype=a.dtype)
    q_mat = np.column_stack(q_cols).astype(a.dtype, copy=False)
    r_mat = np.vstack(r_rows).astype(a.dtype, copy=False)
    return q_mat, np.triu(r_mat[:, :n]) if r_mat.shape[0] == n else r_mat


def orthogonality_defect(q: np.ndarray) -> float:
    """``‖Q^T Q − I‖_F`` with the Gram matrix computed by the AtA algorithm.

    A perfectly orthonormal basis gives 0; the defect grows with loss of
    orthogonality (classical Gram–Schmidt on ill-conditioned inputs).
    """
    validate_matrix(q, "Q")
    gram = symmetrize_from_lower(matmul_ata(np.ascontiguousarray(q, dtype=np.float64)))
    gram[np.diag_indices_from(gram)] -= 1.0
    return float(np.linalg.norm(gram))


def project_onto_columns(a: np.ndarray, x: np.ndarray, *, rcond: float = 1e-12) -> np.ndarray:
    """Orthogonal projection of ``x`` onto ``range(A)``:
    ``P x = A (A^T A)^+ A^T x`` with the Gram matrix from AtA."""
    validate_matrix(a, "A")
    x = np.asarray(x, dtype=a.dtype)
    if x.shape[0] != a.shape[0]:
        raise ShapeError(f"x must have {a.shape[0]} rows, got {x.shape}")
    gram = symmetrize_from_lower(matmul_ata(np.ascontiguousarray(a, dtype=np.float64)))
    coeffs = np.linalg.pinv(gram, rcond=rcond) @ (a.T @ x)
    return a @ coeffs


def reorthogonalize(q: np.ndarray, *, defect_tol: float = 1e-10,
                    max_passes: int = 2) -> np.ndarray:
    """Iteratively refine a nearly-orthonormal basis until the AtA-measured
    defect falls below ``defect_tol`` (at most ``max_passes`` MGS passes)."""
    validate_matrix(q, "Q")
    out = q
    for _ in range(max_passes):
        if orthogonality_defect(out) <= defect_tol:
            break
        out, _ = modified_gram_schmidt(out)
    return out
