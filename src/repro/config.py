"""Global configuration for the :mod:`repro` library.

The paper's algorithms are *cache oblivious*: they recurse until the
sub-problem "fits in cache" and then call a BLAS kernel (``?syrk`` or
``?gemm``).  The only tunable is therefore the base-case threshold, which
this module exposes together with a handful of library-wide defaults
(default floating point dtype, RNG seeding, whether kernels keep flop /
byte counters).

Configuration is held in a module-level :class:`Config` instance,
:data:`CONFIG`.  Code should *read* configuration through
:func:`get_config` and *modify* it either directly (for long-lived,
process-wide changes) or through the :func:`configured` context manager
(for scoped changes, e.g. inside tests).

Example
-------
>>> from repro.config import configured, get_config
>>> with configured(base_case_elements=256):
...     assert get_config().base_case_elements == 256
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from typing import Any, Iterator

import numpy as np

from .errors import ConfigurationError

#: Default number of matrix *elements* below which the recursion stops and a
#: BLAS kernel is invoked.  The paper uses "fits in cache"; 32 KiB of L1
#: data cache holds 4096 doubles, and the paper's base case compares the
#: *product* of the sub-matrix dimensions against the cache size, so the
#: default mirrors that: m*n <= 4096.
DEFAULT_BASE_CASE_ELEMENTS = 4096

#: Default dtype for workloads and workspaces when the caller does not
#: specify one.
DEFAULT_DTYPE = np.float64

#: Default seed used by the workload generators in :mod:`repro.bench`.
DEFAULT_SEED = 0x5EED

#: Backend names the ``backend`` field / ``REPRO_BACKEND`` env var accept.
#: Mirrors the built-in registry of :mod:`repro.engine.backends` ("auto"
#: means "let dispatch choose").  Custom backends registered at runtime
#: are selected per call via ``algo=<name>`` instead of through the
#: process-wide configuration, which keeps this validation closed.
KNOWN_BACKENDS = ("auto", "syrk", "ata", "tiled", "recursive_gemm",
                  "strassen", "blas_direct", "sparse_gram", "densify",
                  "banded_ata", "lowrank_gram")

#: Default exploration budget of the measured auto-tuner: how many timed
#: samples each candidate backend gets per shape bucket before the tuner
#: starts exploiting the measured-fastest one.
DEFAULT_TUNER_EXPLORE = 3

#: Default maximum number of requests the serving layer coalesces into one
#: ``run_batch`` call.
DEFAULT_SERVE_MAX_BATCH = 8

#: Default bound on a server's in-flight requests (pending in a coalescing
#: queue or executing); submits beyond it are rejected with
#: :class:`repro.errors.QueueFullError`.
DEFAULT_SERVE_MAX_INFLIGHT = 256

#: Default linger: how long (milliseconds) a coalescing queue holds its
#: first request open for companions before flushing a partial batch.
#: ``0`` still coalesces requests submitted in the same event-loop
#: iteration (the flush runs after the currently scheduled callbacks).
DEFAULT_SERVE_LINGER_MS = 2.0

#: Default out-of-core memory budget in **bytes**.  ``0`` means unbounded:
#: the out-of-core executor runs the whole input as a single panel unless
#: a per-call budget or explicit panel size says otherwise.
DEFAULT_MEMORY_BUDGET = 0

#: Default worker-process count of the multi-process panel farm.  ``0``
#: keeps out-of-core runs in-process (the single-process streaming path);
#: callers opt into the farm per call via ``procs=N`` or process-wide
#: through this field / ``REPRO_FARM_PROCS``.
DEFAULT_FARM_PROCS = 0

#: Default retry budget per panel of the self-healing farm: how many times
#: a lost panel (dead or failing worker) is re-staged onto a respawned
#: worker before the run degrades to in-process completion.
DEFAULT_FARM_MAX_RETRIES = 2

#: Default TCP port of the serving network front door
#: (:class:`repro.serve.NetServer`).  ``0`` binds an ephemeral port (the
#: listener reports the one the OS picked), which is also the right
#: default for tests and benchmarks sharing one host.
DEFAULT_SERVE_PORT = 0

#: Default per-client fair share of the serving admission window, as a
#: fraction of ``serve_max_inflight`` in ``(0, 1]``.  ``1.0`` disables
#: fairness (admission is first-come, the pre-PR-9 behaviour); smaller
#: values bound any one client id to ``max(1, floor(share *
#: max_inflight))`` in-flight requests, rejected beyond that with
#: :class:`repro.errors.FairnessError`.
DEFAULT_SERVE_FAIR_SHARE = 1.0

#: Default serving deadline in milliseconds.  ``0`` means no deadline: a
#: request waits as long as the queue and engine take.  Per-call
#: ``submit(timeout=...)`` overrides win.
DEFAULT_SERVE_TIMEOUT_MS = 0.0

#: Modes the ``fuse`` field / ``REPRO_FUSE`` env var accept.
FUSE_MODES = ("off", "on", "auto")

#: Modes the ``codegen`` field / ``REPRO_CODEGEN`` env var accept.
CODEGEN_MODES = ("off", "on", "auto")

#: Modes the ``tuner_mode`` field / ``REPRO_TUNER`` env var accept.
TUNER_MODES = ("off", "measured", "frozen")


@dataclasses.dataclass
class Config:
    """Library-wide tunables.

    Attributes
    ----------
    base_case_elements:
        Sub-problems with ``m * n`` (for A^T A) or ``m * n + m * k`` (for
        A^T B) at most this many elements are solved by a direct BLAS call
        instead of recursing.  Mirrors the cache-size test of Algorithm 1 /
        Algorithm 2 in the paper.
    default_dtype:
        dtype used when callers do not specify one explicitly.
    count_flops:
        When True the BLAS substrate records floating point operation and
        byte-traffic counts into the active
        :class:`repro.blas.counters.CounterSet`.  Counting costs a few
        percent of runtime and is enabled by default because the
        performance model and several benchmarks rely on it.
    strict_finite:
        When True, top-level entry points validate that inputs contain no
        NaN/Inf values.  Disabled by default (the check is O(mn)).
    seed:
        Default seed for workload generation.
    max_recursion_depth:
        Safety valve against pathological configurations (e.g. a base case
        of 0 elements).  The recursion depth of a well-formed call is
        bounded by ``ceil(log2(max(m, n)))``; this limit is far above that.
    backend:
        Forces ``algo="auto"`` dispatch in :mod:`repro.engine` onto one
        named backend (one of :data:`KNOWN_BACKENDS`).  ``"auto"``
        (default) lets the engine choose — heuristically, or by measured
        timings when a tuner is attached.  A forced backend that does not
        support a given operation/dtype is skipped for that call (e.g.
        ``blas_direct`` on a host without BLAS symbols).
    tuner_path:
        Filesystem path of the measured auto-tuner's persisted timing
        table.  ``None`` resolves to ``~/.cache/repro/tuner.json`` (or
        ``$REPRO_TUNER_PATH``).
    tuner_explore:
        Exploration budget of the measured auto-tuner: timed samples each
        candidate backend receives per shape bucket before the tuner
        exploits the fastest.  Budgets ≥ 2 are recommended for real
        traffic — the first sample on a plan-compiled backend includes
        its one-off compile cost, which ``best-of-budget`` filters out
        from the second sample on (a budget of 1 is mainly for tests
        driving the tuner with an injected clock).
    serve_max_batch:
        Default maximum coalesced batch size of :class:`repro.serve.Server`
        queues (a server reads it once at construction; per-server
        overrides win).
    serve_max_inflight:
        Default admission-control bound of :class:`repro.serve.Server`:
        in-flight requests beyond it are rejected with
        :class:`repro.errors.QueueFullError`.
    serve_linger_ms:
        Default milliseconds a serving queue holds its first request open
        for coalescing companions before flushing a partial batch.
    serve_port:
        Default TCP port of the serving network front door
        (:class:`repro.serve.NetServer`); ``0`` (default) binds an
        ephemeral port.
    serve_fair_share:
        Default per-client fair share of the serving admission window,
        as a fraction of ``serve_max_inflight`` in ``(0, 1]``.  ``1.0``
        (default) keeps admission first-come; below it, one client id
        may hold at most ``max(1, floor(share * max_inflight))``
        in-flight requests (:class:`repro.errors.FairnessError` beyond),
        and queue drains interleave clients round-robin so a chatty
        client cannot starve its queue's companions.
    memory_budget:
        Out-of-core working-set budget in bytes for
        :class:`repro.engine.ooc.ShardedAtA` /
        :func:`repro.engine.matmul_ata_ooc`: the resident output ``C``
        plus the streamed row panel(s) of ``A`` must fit inside it (the
        panel bytes count twice while the prefetch thread double-buffers).
        ``0`` (default) means unbounded — the whole input is one panel.
        A budget too small for ``C`` plus a single row raises
        :class:`repro.errors.BudgetError`.
    farm_procs:
        Default worker-process count for out-of-core runs
        (:class:`repro.engine.farm.PanelFarm`).  ``0`` (default) keeps
        runs in-process; ``N >= 1`` fans panels out to ``N`` worker
        processes over shared-memory arenas.  Per-call ``procs=``
        overrides win; ``procs=None`` on a farm instance resolves to
        :func:`repro.engine.cpu.available_cpus`.
    farm_max_retries:
        Per-panel retry budget of the self-healing farm: a panel lost to
        a dead or failing worker is re-staged onto a respawned worker at
        most this many times before the run degrades to finishing the
        remaining panels in-process (``0`` = degrade on the first
        failure; degradation preserves the schedule, so the result stays
        bit-identical).
    serve_default_timeout_ms:
        Default deadline (milliseconds) of :meth:`repro.serve.Server.submit`
        requests.  A request that has no result when its deadline expires
        is settled with :class:`repro.errors.DeadlineError` and dropped
        from its coalescing queue without poisoning companions.  ``0``
        (default) = no deadline; per-call ``timeout=`` overrides win.
    faults:
        Fault-injection spec (see :mod:`repro.faults` for the grammar),
        e.g. ``"farm.worker:kill@p1,serve.batch:raise@0.1"``.  Empty
        (default) keeps every fault site a zero-overhead no-op — never
        set in production; this exists for chaos tests and failure
        drills.
    fuse:
        Plan-fusion mode for ``algo="auto"`` dispatch: ``"on"`` (default)
        compiles plans with the step-fusion pass (bit-identical to the
        unfused replay, fewer Python dispatches), ``"off"`` disables it,
        and ``"auto"`` defers the fused-vs-unfused choice to an attached
        measured tuner per (op, dtype, shape-bucket) — identical to
        ``"on"`` on engines without a tuner.  Explicit ``algo=`` calls
        and direct :func:`repro.engine.plan.compile_plan` calls are
        unaffected.
    codegen:
        Compiled lowering of fused units (:mod:`repro.engine.codegen`):
        ``"off"`` (default) always interprets; ``"on"``/``"auto"`` lower
        fused units to jitted kernels when a provider (numba) is
        importable, verifying each kernel bit-for-bit against the
        interpreter on its first call and falling back bit-identically
        when the toolchain is absent or a kernel miscompiles.
    tuner_mode:
        How the *default* engine attaches the measured auto-tuner:
        ``"off"`` (default) keeps heuristic dispatch, ``"measured"``
        attaches a recording tuner (explores, then exploits — repeated
        runs may time differently while exploring), ``"frozen"`` attaches
        a read-only tuner that only ever exploits the persisted table —
        deterministic backend choices across runs, falling back to the
        heuristic for buckets the table has never sampled.  Engines
        constructed explicitly pass their own ``tuner=``.
    """

    base_case_elements: int = DEFAULT_BASE_CASE_ELEMENTS
    default_dtype: Any = DEFAULT_DTYPE
    count_flops: bool = True
    strict_finite: bool = False
    seed: int = DEFAULT_SEED
    max_recursion_depth: int = 64
    backend: str = "auto"
    tuner_path: Any = None
    tuner_explore: int = DEFAULT_TUNER_EXPLORE
    serve_max_batch: int = DEFAULT_SERVE_MAX_BATCH
    serve_max_inflight: int = DEFAULT_SERVE_MAX_INFLIGHT
    serve_linger_ms: float = DEFAULT_SERVE_LINGER_MS
    serve_port: int = DEFAULT_SERVE_PORT
    serve_fair_share: float = DEFAULT_SERVE_FAIR_SHARE
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    farm_procs: int = DEFAULT_FARM_PROCS
    farm_max_retries: int = DEFAULT_FARM_MAX_RETRIES
    serve_default_timeout_ms: float = DEFAULT_SERVE_TIMEOUT_MS
    faults: str = ""
    fuse: str = "on"
    codegen: str = "off"
    tuner_mode: str = "off"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any field is out of range."""
        if self.base_case_elements < 1:
            raise ConfigurationError(
                f"base_case_elements must be >= 1, got {self.base_case_elements}"
            )
        if self.max_recursion_depth < 1:
            raise ConfigurationError(
                f"max_recursion_depth must be >= 1, got {self.max_recursion_depth}"
            )
        dt = np.dtype(self.default_dtype)
        if dt.kind not in ("f", "c"):
            raise ConfigurationError(
                f"default_dtype must be a floating or complex dtype, got {dt}"
            )
        if self.backend not in KNOWN_BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{KNOWN_BACKENDS} (custom backends are selected per call "
                "via algo=<name>)"
            )
        if self.tuner_explore < 1:
            raise ConfigurationError(
                f"tuner_explore must be >= 1, got {self.tuner_explore}"
            )
        if self.serve_max_batch < 1:
            raise ConfigurationError(
                f"serve_max_batch must be >= 1, got {self.serve_max_batch}"
            )
        if self.serve_max_inflight < 1:
            raise ConfigurationError(
                f"serve_max_inflight must be >= 1, got {self.serve_max_inflight}"
            )
        if not (self.serve_linger_ms >= 0):
            raise ConfigurationError(
                f"serve_linger_ms must be >= 0, got {self.serve_linger_ms}"
            )
        if not (0 <= self.serve_port <= 65535):
            raise ConfigurationError(
                "serve_port must be in [0, 65535] (0 = ephemeral), got "
                f"{self.serve_port}"
            )
        if not (0.0 < self.serve_fair_share <= 1.0):
            raise ConfigurationError(
                "serve_fair_share must be in (0, 1] (1 = fairness off), "
                f"got {self.serve_fair_share}"
            )
        if self.memory_budget < 0:
            raise ConfigurationError(
                "memory_budget must be >= 0 bytes (0 = unbounded), got "
                f"{self.memory_budget}"
            )
        if self.farm_procs < 0:
            raise ConfigurationError(
                "farm_procs must be >= 0 (0 = in-process), got "
                f"{self.farm_procs}"
            )
        if self.farm_max_retries < 0:
            raise ConfigurationError(
                "farm_max_retries must be >= 0 (0 = degrade on first "
                f"failure), got {self.farm_max_retries}"
            )
        if not (self.serve_default_timeout_ms >= 0):
            raise ConfigurationError(
                "serve_default_timeout_ms must be >= 0 (0 = no deadline), "
                f"got {self.serve_default_timeout_ms}"
            )
        if self.faults:
            # compile for validation only (lazy import: repro.faults
            # imports this module); the compiled plan itself is cached by
            # the faults module keyed on (spec, seed)
            from .faults import compile_spec
            compile_spec(self.faults, self.seed)
        if self.fuse not in FUSE_MODES:
            raise ConfigurationError(
                f"unknown fuse mode {self.fuse!r}; expected one of {FUSE_MODES}"
            )
        if self.codegen not in CODEGEN_MODES:
            raise ConfigurationError(
                f"unknown codegen mode {self.codegen!r}; expected one of "
                f"{CODEGEN_MODES}"
            )
        if self.tuner_mode not in TUNER_MODES:
            raise ConfigurationError(
                f"unknown tuner_mode {self.tuner_mode!r}; expected one of "
                f"{TUNER_MODES}"
            )

    def replace(self, **changes: Any) -> "Config":
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def _config_from_env() -> Config:
    """Build the initial configuration, honouring ``REPRO_*`` env vars.

    Recognised variables:

    ``REPRO_BASE_CASE``     integer, base-case element count.
    ``REPRO_COUNT_FLOPS``   "0"/"1", toggle instrumentation.
    ``REPRO_SEED``          integer, default workload seed.
    ``REPRO_BACKEND``       backend name forcing ``algo="auto"`` dispatch
                            (one of :data:`KNOWN_BACKENDS`); unknown names
                            raise :class:`ConfigurationError`.
    ``REPRO_TUNER_PATH``    path of the auto-tuner's persisted timing table.
    ``REPRO_SERVE_MAX_BATCH``     integer, serving coalesced-batch bound.
    ``REPRO_SERVE_MAX_INFLIGHT``  integer, serving admission-control bound.
    ``REPRO_SERVE_LINGER_MS``     float, serving queue linger (milliseconds).
    ``REPRO_SERVE_PORT``          integer, serving TCP port (0 = ephemeral).
    ``REPRO_SERVE_FAIR_SHARE``    float in (0, 1], per-client share of the
                                  serving admission window (1 = off).
    ``REPRO_MEMORY_BUDGET``       integer, out-of-core working-set budget in
                                  bytes (0 = unbounded).
    ``REPRO_FARM_PROCS``          integer, default panel-farm worker-process
                                  count (0 = in-process).
    ``REPRO_FARM_MAX_RETRIES``    integer, per-panel retry budget of the
                                  self-healing farm (0 = degrade on the
                                  first failure).
    ``REPRO_SERVE_TIMEOUT_MS``    float, default serving deadline in
                                  milliseconds (0 = no deadline).
    ``REPRO_FAULTS``              fault-injection spec (:mod:`repro.faults`
                                  grammar); empty = all sites disarmed.
    ``REPRO_FUSE``                plan-fusion mode (one of
                                  :data:`FUSE_MODES`).
    ``REPRO_CODEGEN``             compiled-lowering mode (one of
                                  :data:`CODEGEN_MODES`).
    ``REPRO_TUNER``               default-engine tuner mode (one of
                                  :data:`TUNER_MODES`).
    """
    kwargs: dict[str, Any] = {}
    if "REPRO_BASE_CASE" in os.environ:
        kwargs["base_case_elements"] = int(os.environ["REPRO_BASE_CASE"])
    if "REPRO_COUNT_FLOPS" in os.environ:
        kwargs["count_flops"] = os.environ["REPRO_COUNT_FLOPS"] not in ("0", "false", "")
    if "REPRO_SEED" in os.environ:
        kwargs["seed"] = int(os.environ["REPRO_SEED"])
    if "REPRO_BACKEND" in os.environ:
        kwargs["backend"] = os.environ["REPRO_BACKEND"]
    if "REPRO_TUNER_PATH" in os.environ:
        kwargs["tuner_path"] = os.environ["REPRO_TUNER_PATH"]
    if "REPRO_SERVE_MAX_BATCH" in os.environ:
        kwargs["serve_max_batch"] = int(os.environ["REPRO_SERVE_MAX_BATCH"])
    if "REPRO_SERVE_MAX_INFLIGHT" in os.environ:
        kwargs["serve_max_inflight"] = int(os.environ["REPRO_SERVE_MAX_INFLIGHT"])
    if "REPRO_SERVE_LINGER_MS" in os.environ:
        kwargs["serve_linger_ms"] = float(os.environ["REPRO_SERVE_LINGER_MS"])
    if "REPRO_SERVE_PORT" in os.environ:
        kwargs["serve_port"] = int(os.environ["REPRO_SERVE_PORT"])
    if "REPRO_SERVE_FAIR_SHARE" in os.environ:
        kwargs["serve_fair_share"] = float(
            os.environ["REPRO_SERVE_FAIR_SHARE"])
    if "REPRO_MEMORY_BUDGET" in os.environ:
        kwargs["memory_budget"] = int(os.environ["REPRO_MEMORY_BUDGET"])
    if "REPRO_FARM_PROCS" in os.environ:
        kwargs["farm_procs"] = int(os.environ["REPRO_FARM_PROCS"])
    if "REPRO_FARM_MAX_RETRIES" in os.environ:
        kwargs["farm_max_retries"] = int(os.environ["REPRO_FARM_MAX_RETRIES"])
    if "REPRO_SERVE_TIMEOUT_MS" in os.environ:
        kwargs["serve_default_timeout_ms"] = float(
            os.environ["REPRO_SERVE_TIMEOUT_MS"])
    if "REPRO_FAULTS" in os.environ:
        kwargs["faults"] = os.environ["REPRO_FAULTS"]
    if "REPRO_FUSE" in os.environ:
        kwargs["fuse"] = os.environ["REPRO_FUSE"]
    if "REPRO_CODEGEN" in os.environ:
        kwargs["codegen"] = os.environ["REPRO_CODEGEN"]
    if "REPRO_TUNER" in os.environ:
        kwargs["tuner_mode"] = os.environ["REPRO_TUNER"]
    return Config(**kwargs)


#: The process-wide configuration instance.
CONFIG: Config = _config_from_env()


def get_config() -> Config:
    """Return the active :class:`Config` instance."""
    return CONFIG


def set_config(config: Config) -> Config:
    """Replace the process-wide configuration; returns the previous one."""
    global CONFIG
    config.validate()
    previous, CONFIG = CONFIG, config
    return previous


@contextlib.contextmanager
def configured(**changes: Any) -> Iterator[Config]:
    """Context manager temporarily overriding configuration fields.

    >>> with configured(base_case_elements=64) as cfg:
    ...     ...  # recursion now bottoms out at 64 elements
    """
    previous = get_config()
    try:
        current = previous.replace(**changes)
        set_config(current)
        yield current
    finally:
        set_config(previous)
