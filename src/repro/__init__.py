"""repro — reproduction of *Efficiently Parallelizable Strassen-Based
Multiplication of a Matrix by its Transpose* (Arrigoni, Maggioli, Massini,
Rodolà — ICPP 2021).

The package implements the paper's contribution and everything it depends
on:

* :func:`repro.ata` — the sequential cache-oblivious AtA algorithm
  (Algorithm 1), plus :func:`repro.fast_strassen` (the rectangular Strassen
  ``A^T B`` it uses) and :func:`repro.recursive_gemm` (Algorithm 2);
* :func:`repro.ata_shared` — AtA-S, the shared-memory parallel algorithm
  driven by the collision-free task tree of Section 4.2;
* :func:`repro.ata_distributed` — AtA-D, the distributed
  distribute–compute–retrieve algorithm of Section 4.3, running on the
  bundled simulated MPI layer;
* the baselines of Section 5 (MKL-like ``syrk``/``gemm``, ScaLAPACK-style
  ``pdsyrk``, CAPS, COSMA), the performance model that prices counted work
  on the paper's cluster, the applications the introduction motivates, and
  the benchmark harness that regenerates every figure and table;
* :mod:`repro.engine` — the plan-compiling execution engine:
  :func:`repro.matmul_ata` / :func:`repro.run_batch` serve repeated
  traffic through cached recursion plans and pooled workspaces, with
  results bit-identical to the direct calls;
* :mod:`repro.serve` — the asyncio serving front-end:
  :class:`repro.Server` coalesces concurrent clients' requests into the
  engine's batch entry points under admission control, so heavy traffic
  shares one warm plan cache and workspace pool;
* :mod:`repro.engine.ooc` — out-of-core panel sharding:
  :func:`repro.matmul_ata_ooc` / :func:`repro.run_ooc` stream inputs
  that exceed memory (memmaps, chunk iterators) through the engine as
  budget-sized row panels under ``Config.memory_budget``, bit-identical
  to the in-memory engine on the same fixed panel schedule;
* :mod:`repro.engine.farm` — the multi-process panel farm:
  ``run_ooc(procs=N)`` (or :class:`repro.PanelFarm` directly) fans those
  panels out to worker processes over shared-memory arenas, folding the
  partial Grams through a fixed ascending reduction tree so the result
  is bit-identical whatever the worker count — and self-heals worker
  loss: dead workers are respawned and their panels replayed (bounded by
  ``Config.farm_max_retries``), degrading to bit-identical in-process
  completion when retries run out;
* :mod:`repro.faults` — deterministic, seeded fault injection: named
  sites across the farm, the out-of-core stream, serving and the tuner,
  armed by ``Config.faults`` / ``$REPRO_FAULTS``
  (e.g. ``farm.worker:kill@p3``) and zero-overhead no-ops otherwise.

Quickstart
----------
>>> import numpy as np, repro
>>> a = np.random.default_rng(0).standard_normal((500, 300))
>>> c = repro.ata(a)                      # lower triangle of A^T A
>>> c_full = repro.ata_full(a)            # full symmetric product
>>> c_par = repro.ata_shared(a, threads=8)
>>> c_dist = repro.ata_distributed(a, processes=8)
"""

from .config import Config, configured, get_config, set_config
from .errors import (
    BudgetError,
    CommunicatorError,
    ConfigurationError,
    DeadlineError,
    DTypeError,
    FairnessError,
    FarmError,
    FaultInjected,
    ProtocolError,
    QueueFullError,
    ReproError,
    SchedulerError,
    ServerClosedError,
    ShapeError,
    WorkspaceError,
)
from . import faults
from .core import (
    aat,
    ata,
    ata_full,
    fast_strassen,
    recursive_gemm,
    strassen_atb,
    StrassenWorkspace,
)
from .engine import (
    ChunkSource,
    ExecutionEngine,
    ExecutionPlan,
    LowRank,
    PanelFarm,
    ShardedAtA,
    available_cpus,
    default_engine,
    matmul_ata,
    matmul_ata_ooc,
    matmul_atb,
    run_batch,
    run_batch_atb,
    run_farm,
    run_ooc,
)
from .serve import Server, retry
from .parallel import ata_shared
from .distributed import ata_distributed
from .blas import symmetrize_from_lower
from .scheduler import build_task_tree

__version__ = "1.0.0"

__all__ = [
    "Config",
    "configured",
    "get_config",
    "set_config",
    "BudgetError",
    "CommunicatorError",
    "DeadlineError",
    "FarmError",
    "FaultInjected",
    "ConfigurationError",
    "DTypeError",
    "FairnessError",
    "ProtocolError",
    "QueueFullError",
    "ReproError",
    "SchedulerError",
    "ServerClosedError",
    "ShapeError",
    "WorkspaceError",
    "aat",
    "ata",
    "ata_full",
    "fast_strassen",
    "recursive_gemm",
    "strassen_atb",
    "StrassenWorkspace",
    "ata_shared",
    "ata_distributed",
    "symmetrize_from_lower",
    "build_task_tree",
    "ExecutionEngine",
    "ExecutionPlan",
    "LowRank",
    "PanelFarm",
    "ShardedAtA",
    "ChunkSource",
    "available_cpus",
    "default_engine",
    "matmul_ata",
    "matmul_ata_ooc",
    "matmul_atb",
    "run_batch",
    "run_batch_atb",
    "run_farm",
    "run_ooc",
    "Server",
    "retry",
    "faults",
    "__version__",
]
