"""A simulated MPI layer (the distributed-memory substrate).

The paper's AtA-D runs on a cluster through MPI.  This reproduction runs in
a single Python process, so this module provides an in-process,
thread-backed message-passing layer with the subset of MPI semantics the
algorithms and baselines need:

* SPMD launch (:func:`run_spmd`): every rank runs the same program function
  concurrently on its own thread;
* blocking point-to-point ``send`` / ``recv`` with source and tag matching
  (unbounded buffering on the receiver side, so ``send`` never deadlocks —
  the "eager" protocol);
* the collectives used by the baselines: ``bcast``, ``scatter``,
  ``gather``, ``allgather``, ``reduce``, ``allreduce``, ``barrier``;
* per-rank traffic accounting (message and byte counters, per-peer and
  total) that the performance model converts into modeled communication
  time with an α–β network model, and that the tests compare against the
  analytic bounds of Prop. 4.2.

numpy arrays are transferred without copies being charged to compute (the
receiver gets a copy so that rank-local mutation cannot alias another
rank's buffer, as in real distributed memory).  Arbitrary picklable Python
objects are also supported (their pickled size is what gets counted),
mirroring mpi4py's lowercase-method convention.
"""

from __future__ import annotations

import dataclasses
import pickle
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..blas import counters as blas_counters
from ..errors import CommunicatorError

__all__ = ["CommStats", "Communicator", "run_spmd", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source / tag values (match-anything), mirroring MPI.
ANY_SOURCE = -1
ANY_TAG = -1

#: Default number of seconds a blocking receive waits before concluding the
#: program has deadlocked.  Kept finite so a buggy algorithm fails a test
#: instead of hanging the suite.
DEFAULT_TIMEOUT = 120.0


def _payload_bytes(obj: Any) -> int:
    """Number of bytes a message payload would occupy on the wire."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable payloads
        return 0


def _copy_payload(obj: Any) -> Any:
    """Copy a payload so sender and receiver never alias memory."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return obj


@dataclasses.dataclass
class CommStats:
    """Aggregated traffic statistics of one SPMD run."""

    size: int
    sent_messages: List[int]
    sent_bytes: List[int]
    received_messages: List[int]
    received_bytes: List[int]
    per_pair_bytes: Dict[Tuple[int, int], int]
    per_rank_flops: List[int]

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages)

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes)

    def messages_on_rank(self, rank: int) -> int:
        """Messages on ``rank``'s critical path (sent plus received), the
        quantity bounded by the latency term of Prop. 4.2."""
        return self.sent_messages[rank] + self.received_messages[rank]

    def bytes_on_rank(self, rank: int) -> int:
        return self.sent_bytes[rank] + self.received_bytes[rank]

    def max_rank_flops(self) -> int:
        return max(self.per_rank_flops) if self.per_rank_flops else 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "sent_messages": list(self.sent_messages),
            "sent_bytes": list(self.sent_bytes),
            "received_messages": list(self.received_messages),
            "received_bytes": list(self.received_bytes),
            "per_rank_flops": list(self.per_rank_flops),
        }


class _World:
    """Shared state of one SPMD execution (mailboxes, counters, barrier)."""

    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self.mailboxes: List["queue.Queue[Tuple[int, int, Any, int]]"] = [
            queue.Queue() for _ in range(size)
        ]
        self.lock = threading.Lock()
        self.sent_messages = [0] * size
        self.sent_bytes = [0] * size
        self.received_messages = [0] * size
        self.received_bytes = [0] * size
        self.per_pair_bytes: Dict[Tuple[int, int], int] = {}
        self.per_rank_counters = [blas_counters.CounterSet() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.abort = threading.Event()

    def stats(self) -> CommStats:
        return CommStats(
            size=self.size,
            sent_messages=list(self.sent_messages),
            sent_bytes=list(self.sent_bytes),
            received_messages=list(self.received_messages),
            received_bytes=list(self.received_bytes),
            per_pair_bytes=dict(self.per_pair_bytes),
            per_rank_flops=[c.total_flops for c in self.per_rank_counters],
        )


class Communicator:
    """The per-rank handle handed to an SPMD program.

    Provides the MPI-like API (``rank``, ``size``, ``send``, ``recv``,
    collectives) plus traffic accounting.  Each rank has exactly one
    communicator instance, used only from its own thread.
    """

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size
        # Messages that were popped from the mailbox while looking for a
        # specific (source, tag) and must be re-delivered later.
        self._stash: List[Tuple[int, int, Any, int]] = []

    # -- point to point -----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest`` (eager, never blocks)."""
        if not (0 <= dest < self.size):
            raise CommunicatorError(f"destination rank {dest} out of range 0..{self.size - 1}")
        if dest == self.rank:
            # self-sends are legal (and used by collectives); they bypass
            # the traffic counters like an in-memory copy would.
            self._world.mailboxes[dest].put((self.rank, tag, _copy_payload(obj), 0))
            return
        nbytes = _payload_bytes(obj)
        with self._world.lock:
            self._world.sent_messages[self.rank] += 1
            self._world.sent_bytes[self.rank] += nbytes
            self._world.received_messages[dest] += 1
            self._world.received_bytes[dest] += nbytes
            key = (self.rank, dest)
            self._world.per_pair_bytes[key] = self._world.per_pair_bytes.get(key, 0) + nbytes
        blas_counters.record("send", bytes=nbytes)
        self._world.mailboxes[dest].put((self.rank, tag, _copy_payload(obj), nbytes))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive matching ``source`` and ``tag`` (wildcards allowed)."""
        # first look in the stash of already-popped, unmatched messages
        for idx, (src, msg_tag, payload, _nbytes) in enumerate(self._stash):
            if _matches(src, msg_tag, source, tag):
                self._stash.pop(idx)
                return payload
        deadline = self._world.timeout
        while True:
            if self._world.abort.is_set():
                raise CommunicatorError(f"rank {self.rank}: aborted because another rank failed")
            try:
                src, msg_tag, payload, _nbytes = self._world.mailboxes[self.rank].get(timeout=min(deadline, 0.5))
            except queue.Empty:
                deadline -= 0.5
                if deadline <= 0:
                    raise CommunicatorError(
                        f"rank {self.rank}: receive from source={source} tag={tag} timed out "
                        f"after {self._world.timeout}s (likely deadlock)"
                    ) from None
                continue
            if _matches(src, msg_tag, source, tag):
                return payload
            self._stash.append((src, msg_tag, payload, _nbytes))

    def sendrecv(self, obj: Any, dest: int, source: int, send_tag: int = 0,
                 recv_tag: int = ANY_TAG) -> Any:
        """Combined send and receive (used by the SUMMA baseline)."""
        self.send(obj, dest, send_tag)
        return self.recv(source, recv_tag)

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks."""
        self._world.barrier.wait(timeout=self._world.timeout)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank."""
        tag = _COLLECTIVE_TAGS["bcast"]
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag)
            return _copy_payload(obj)
        return self.recv(root, tag)

    def scatter(self, chunks: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter one chunk to each rank from ``root``."""
        tag = _COLLECTIVE_TAGS["scatter"]
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise CommunicatorError(
                    f"scatter at root needs exactly {self.size} chunks"
                )
            for dest, chunk in enumerate(chunks):
                if dest != root:
                    self.send(chunk, dest, tag)
            return _copy_payload(chunks[root])
        return self.recv(root, tag)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object from every rank at ``root``."""
        tag = _COLLECTIVE_TAGS["gather"]
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = _copy_payload(obj)
            for _ in range(self.size - 1):
                # accept in any order; senders prepend their rank
                src_rank, payload = self.recv(ANY_SOURCE, tag)
                out[src_rank] = payload
            return out
        self.send((self.rank, obj), root, tag)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather at rank 0 then broadcast the list to everyone."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None, root: int = 0) -> Any:
        """Reduce values from all ranks at ``root`` (default op: addition)."""
        op = op if op is not None else _add
        gathered = self.gather(value, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce then broadcast the result to every rank."""
        reduced = self.reduce(value, op=op, root=0)
        return self.bcast(reduced, root=0)


def _add(a: Any, b: Any) -> Any:
    return a + b


def _matches(src: int, msg_tag: int, want_src: int, want_tag: int) -> bool:
    return ((want_src == ANY_SOURCE or src == want_src)
            and (want_tag == ANY_TAG or msg_tag == want_tag))


_COLLECTIVE_TAGS = {"bcast": -101, "scatter": -102, "gather": -103}


def run_spmd(size: int, program: Callable[..., Any], *args: Any,
             timeout: float = DEFAULT_TIMEOUT, **kwargs: Any
             ) -> Tuple[List[Any], CommStats]:
    """Run ``program(comm, *args, **kwargs)`` on ``size`` simulated ranks.

    Every rank executes on its own thread with its own
    :class:`Communicator`.  Flop/byte counters recorded by the BLAS kernels
    during a rank's execution are attributed to that rank.

    Returns
    -------
    (results, stats):
        ``results[r]`` is the program's return value on rank ``r``;
        ``stats`` aggregates the traffic of the whole run.

    Raises
    ------
    CommunicatorError
        If any rank raised an exception (the first failure is re-raised
        with its rank identified) or a receive timed out.
    """
    if size < 1:
        raise CommunicatorError(f"world size must be >= 1, got {size}")
    world = _World(size, timeout)
    results: List[Any] = [None] * size
    errors: List[Optional[BaseException]] = [None] * size

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        blas_counters.push(world.per_rank_counters[rank])
        try:
            results[rank] = program(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            errors[rank] = exc
            world.abort.set()
        finally:
            blas_counters.pop(world.per_rank_counters[rank])

    if size == 1:
        runner(0)
    else:
        threads = [threading.Thread(target=runner, args=(rank,), name=f"simmpi-rank-{rank}")
                   for rank in range(size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    for rank, exc in enumerate(errors):
        if exc is not None:
            raise CommunicatorError(f"rank {rank} failed: {exc!r}") from exc
    return results, world.stats()
