"""Distributed-memory substrate (simulated MPI) and the AtA-D algorithm."""

from .ata_distributed import DistributedRunStats, ata_distributed
from .costs import (
    bandwidth_words,
    computation_cost,
    distribution_bandwidth_words,
    latency_messages,
    retrieval_bandwidth_words,
)
from .network import LOCAL_SIMULATED, TERASTAT, ClusterTopology, NetworkModel
from .simmpi import ANY_SOURCE, ANY_TAG, CommStats, Communicator, run_spmd

__all__ = [
    "DistributedRunStats",
    "ata_distributed",
    "bandwidth_words",
    "computation_cost",
    "distribution_bandwidth_words",
    "latency_messages",
    "retrieval_bandwidth_words",
    "LOCAL_SIMULATED",
    "TERASTAT",
    "ClusterTopology",
    "NetworkModel",
    "ANY_SOURCE",
    "ANY_TAG",
    "CommStats",
    "Communicator",
    "run_spmd",
]
