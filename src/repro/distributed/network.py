"""Network and cluster cost model (α–β model, TeraStat topology).

The distributed experiments of the paper run on *TeraStat*, a cluster of 12
nodes with 2 × 8-core Intel Xeon E5-2630 v3 processors (2.4 GHz) and 4 GB
of RAM per core, connected by a commodity high-speed network.  Absolute
network parameters are not reported, so this module models communication
with the standard α–β (latency–bandwidth) model used by the papers the
authors cite for their communication analysis ([1], [26]):

    time(messages, bytes) = α · messages + bytes / β

with defaults representative of a QDR InfiniBand cluster of that
generation (α ≈ 2 µs, β ≈ 4 GB/s).  The model converts the message and
byte counters collected by the simulated MPI layer into modeled
communication seconds; the performance model adds the modeled compute time
to obtain the end-to-end numbers of Fig. 6 and Table 1.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..errors import ConfigurationError

__all__ = ["NetworkModel", "ClusterTopology", "TERASTAT", "LOCAL_SIMULATED"]


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """The α–β point-to-point communication cost model.

    Attributes
    ----------
    latency_s:
        Per-message fixed cost α in seconds.
    bandwidth_bytes_per_s:
        Sustained point-to-point bandwidth β in bytes/second.
    """

    latency_s: float = 2.0e-6
    bandwidth_bytes_per_s: float = 4.0e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"latency must be non-negative, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s}")

    def time(self, messages: int, nbytes: int) -> float:
        """Modeled seconds to transfer ``messages`` messages totalling
        ``nbytes`` bytes over one link, serially."""
        return self.latency_s * float(messages) + float(nbytes) / self.bandwidth_bytes_per_s

    def message_time(self, nbytes: int) -> float:
        """Modeled seconds for a single message of ``nbytes`` bytes."""
        return self.time(1, nbytes)


@dataclasses.dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous cluster: nodes × sockets × cores, plus its network.

    The topology decides which communications are intra-node (cheap,
    modeled with the shared-memory network parameters) and which cross the
    interconnect, when the performance model is asked to map ranks onto
    nodes round-robin or block-wise.
    """

    name: str
    nodes: int
    sockets_per_node: int
    cores_per_socket: int
    ghz: float
    ram_per_core_gb: float
    network: NetworkModel = NetworkModel()
    intra_node_network: NetworkModel = NetworkModel(latency_s=5.0e-7,
                                                    bandwidth_bytes_per_s=20.0e9)

    def __post_init__(self) -> None:
        if min(self.nodes, self.sockets_per_node, self.cores_per_socket) < 1:
            raise ConfigurationError("topology extents must all be >= 1")

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of_rank(self, rank: int, *, ranks_per_node: int | None = None) -> int:
        """Node index hosting ``rank`` under block placement."""
        per_node = ranks_per_node if ranks_per_node else self.cores_per_node
        return rank // per_node

    def link_for(self, src: int, dst: int, *, ranks_per_node: int | None = None) -> NetworkModel:
        """The network model governing a message from ``src`` to ``dst``."""
        if self.node_of_rank(src, ranks_per_node=ranks_per_node) == \
                self.node_of_rank(dst, ranks_per_node=ranks_per_node):
            return self.intra_node_network
        return self.network

    def pair_time(self, nbytes_by_pair: Dict[Tuple[int, int], int],
                  *, ranks_per_node: int | None = None) -> float:
        """Modeled time of a set of point-to-point transfers, assuming the
        transfers of distinct pairs overlap perfectly (the maximum over
        pairs) — a lower bound matching the paper's parallel-communication
        scheme during distribution and retrieval."""
        worst = 0.0
        for (src, dst), nbytes in nbytes_by_pair.items():
            model = self.link_for(src, dst, ranks_per_node=ranks_per_node)
            worst = max(worst, model.message_time(nbytes))
        return worst


#: The paper's cluster: 12 nodes × (2 × 8-core Xeon E5-2630 v3 @ 2.4 GHz),
#: 4 GB RAM per core.
TERASTAT = ClusterTopology(
    name="TeraStat",
    nodes=12,
    sockets_per_node=2,
    cores_per_socket=8,
    ghz=2.4,
    ram_per_core_gb=4.0,
)

#: A single-node "cluster" describing the reproduction host; used when the
#: benchmarks are asked for measured rather than modeled numbers.
LOCAL_SIMULATED = ClusterTopology(
    name="local-simulated",
    nodes=1,
    sockets_per_node=1,
    cores_per_socket=1,
    ghz=2.0,
    ram_per_core_gb=4.0,
)
