"""AtA-D — the distributed-memory parallel algorithm (Algorithm 4, §4.3).

AtA-D follows a *distribute–compute–retrieve* paradigm:

1. **Distribution.**  The input matrix ``A`` initially lives only on the
   root process ``p0``.  Walking the task tree level by level, every parent
   process sends to each of its children exactly the sub-blocks of ``A``
   (and, for A^T B tasks, of the second operand — also a block of ``A``)
   that the child's subtree needs.  Messages shrink geometrically with the
   level, which is what bounds the distribution bandwidth in Prop. 4.2.

2. **Compute.**  Each leaf owner runs its task locally and independently —
   ``AtA``/``syrk`` for A^T A leaves, ``FastStrassen``/``gemm`` for A^T B
   leaves — with **no communication at compute time** (Section 4.3.2).

3. **Retrieval.**  Partial results travel back up the tree: every process
   sends its (possibly aggregated) block to its parent, which accumulates
   the contributions of all its children into its own block.  Blocks that
   are symmetric A^T A results are sent as *packed lower triangles*
   (Section 4.3.1), halving their wire size.  At the root the full
   lower-triangular ``C = A^T A`` emerges.

The communicator is the simulated MPI layer of
:mod:`repro.distributed.simmpi`; its traffic counters are returned so the
benchmarks can compare them against Prop. 4.2 and convert them into modeled
time with the α–β network model.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..blas.kernels import validate_matrix
from ..blas.packed import pack_lower, unpack_lower
from ..cache.model import CacheModel, default_cache_model
from ..core.ata import ata
from ..core.partition import Block
from ..core.recursive_gemm import recursive_gemm
from ..core.strassen import fast_strassen
from ..errors import CommunicatorError, ShapeError
from ..scheduler.task import ComputationType, TreeNode
from ..scheduler.tree import TaskTree, build_task_tree
from .simmpi import CommStats, Communicator, run_spmd

__all__ = ["ata_distributed", "DistributedRunStats"]

#: Tag offset separating distribution-phase from retrieval-phase messages.
_RETRIEVE_TAG_OFFSET = 1_000_000


@dataclasses.dataclass
class DistributedRunStats:
    """Everything observed during one AtA-D run (used by the harness)."""

    comm: CommStats
    tree: TaskTree
    wall_time: float
    processes: int

    @property
    def total_messages(self) -> int:
        return self.comm.total_messages

    @property
    def total_bytes(self) -> int:
        return self.comm.total_bytes

    @property
    def root_messages(self) -> int:
        """Messages on the root's critical path (Prop. 4.2 latency term)."""
        return self.comm.messages_on_rank(self.tree.root.owner)

    @property
    def root_bytes(self) -> int:
        """Bytes on the root's critical path (Prop. 4.2 bandwidth term)."""
        return self.comm.bytes_on_rank(self.tree.root.owner)

    @property
    def max_rank_flops(self) -> int:
        return self.comm.max_rank_flops()


# ---------------------------------------------------------------------------
# the per-rank SPMD program
# ---------------------------------------------------------------------------

def _bfs_order(tree: TaskTree) -> List[TreeNode]:
    order: List[TreeNode] = []
    frontier = [tree.root]
    while frontier:
        nxt: List[TreeNode] = []
        for node in frontier:
            order.append(node)
            nxt.extend(node.children)
        frontier = nxt
    return order


def _relative_slice(block: Block, parent_block: Block, parent_array: np.ndarray) -> np.ndarray:
    """View of ``block`` inside ``parent_array`` (which holds ``parent_block``)."""
    r0 = block.row - parent_block.row
    c0 = block.col - parent_block.col
    if r0 < 0 or c0 < 0 or r0 + block.rows > parent_block.rows or c0 + block.cols > parent_block.cols:
        raise ShapeError(f"block {block} is not contained in parent block {parent_block}")
    return parent_array[r0:r0 + block.rows, c0:c0 + block.cols]


def _operand_from_parent(block: Block, parent: TreeNode,
                         parent_data: Tuple[np.ndarray, Optional[np.ndarray]]) -> np.ndarray:
    """Locate ``block`` inside whichever of the parent's operands contains it."""
    parent_a, parent_b = parent_data

    def contains(outer: Block) -> bool:
        return (outer.row <= block.row and outer.col <= block.col
                and block.row_end <= outer.row_end and block.col_end <= outer.col_end)

    if contains(parent.a):
        return _relative_slice(block, parent.a, parent_a)
    if parent.b is not None and parent_b is not None and contains(parent.b):
        return _relative_slice(block, parent.b, parent_b)
    raise ShapeError(f"block {block} is not covered by parent node {parent.node_id} operands")


def _ata_d_program(comm: Communicator, tree: TaskTree, a_root: Optional[np.ndarray],
                   alpha: float, cache: CacheModel, use_strassen: bool,
                   dtype: np.dtype) -> Optional[np.ndarray]:
    rank = comm.rank
    order = _bfs_order(tree)
    node_data: Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
    results: Dict[int, np.ndarray] = {}

    root = tree.root
    if rank == root.owner:
        if a_root is None:
            raise CommunicatorError("root rank did not receive the input matrix")
        node_data[root.node_id] = (a_root, None)

    # ---- phase 1: distribution (top-down, level by level) -----------------
    for node in order:
        if node.parent_id is None:
            continue
        parent = tree.nodes[node.parent_id]
        if rank == parent.owner:
            parent_data = node_data[parent.node_id]
            child_a = _operand_from_parent(node.a, parent, parent_data)
            child_b = None
            if node.b is not None:
                child_b = _operand_from_parent(node.b, parent, parent_data)
            if node.owner == rank:
                node_data[node.node_id] = (child_a, child_b)
            else:
                payload = (np.ascontiguousarray(child_a),
                           None if child_b is None else np.ascontiguousarray(child_b))
                comm.send(payload, node.owner, tag=node.node_id)
        elif rank == node.owner:
            node_data[node.node_id] = comm.recv(parent.owner, tag=node.node_id)

    # ---- phase 2: local computation (no communication) --------------------
    for node in order:
        if not node.is_leaf or node.owner != rank:
            continue
        a_arr, b_arr = node_data[node.node_id]
        out = np.zeros(node.c.shape, dtype=dtype)
        if node.kind is ComputationType.ATA:
            ata(np.ascontiguousarray(a_arr, dtype=dtype), out, alpha, cache=cache)
        else:
            a_contig = np.ascontiguousarray(a_arr, dtype=dtype)
            b_contig = np.ascontiguousarray(b_arr, dtype=dtype)
            if use_strassen:
                fast_strassen(a_contig, b_contig, out, alpha, cache=cache)
            else:
                recursive_gemm(a_contig, b_contig, out, alpha, cache=cache)
        results[node.node_id] = out

    # ---- phase 3: retrieval (bottom-up) ------------------------------------
    for node in reversed(order):
        if rank == node.owner and not node.is_leaf:
            agg = np.zeros(node.c.shape, dtype=dtype)
            for child in node.children:
                if child.owner == rank:
                    child_res = results[child.node_id]
                else:
                    payload = comm.recv(child.owner, tag=_RETRIEVE_TAG_OFFSET + child.node_id)
                    if child.kind is ComputationType.ATA:
                        child_res = unpack_lower(payload, child.c.rows, dtype=dtype)
                    else:
                        child_res = payload
                r0 = child.c.row - node.c.row
                c0 = child.c.col - node.c.col
                agg[r0:r0 + child.c.rows, c0:c0 + child.c.cols] += child_res
            results[node.node_id] = agg

        if rank == node.owner and node.parent_id is not None:
            parent = tree.nodes[node.parent_id]
            if parent.owner != rank:
                block = results[node.node_id]
                if node.kind is ComputationType.ATA and node.c.rows == node.c.cols:
                    comm.send(pack_lower(block), parent.owner,
                              tag=_RETRIEVE_TAG_OFFSET + node.node_id)
                else:
                    comm.send(np.ascontiguousarray(block), parent.owner,
                              tag=_RETRIEVE_TAG_OFFSET + node.node_id)

    if rank == root.owner:
        return results[root.node_id]
    return None


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------

def ata_distributed(a: np.ndarray, processes: int = 4, alpha: float = 1.0, *,
                    cache: Optional[CacheModel] = None,
                    tree: Optional[TaskTree] = None,
                    use_strassen: bool = True,
                    return_stats: bool = False,
                    timeout: float = 120.0,
                    ) -> Union[np.ndarray, Tuple[np.ndarray, DistributedRunStats]]:
    """Lower-triangular ``C = alpha * A^T A`` computed by AtA-D on
    ``processes`` simulated MPI ranks.

    Parameters
    ----------
    a:
        Input matrix of shape ``(m, n)``, initially owned by the root rank
        only (the distribute–compute–retrieve paradigm of Section 4.3).
    processes:
        Number of MPI ranks ``P``.
    alpha:
        Scaling of the product.
    cache:
        Ideal cache model for the per-rank local recursions.
    tree:
        Optional pre-built distributed task tree (must match ``a`` and
        ``processes``).
    use_strassen:
        Use FastStrassen (default) or RecursiveGEMM for A^T B leaves.
    return_stats:
        When True, return ``(C, DistributedRunStats)``.

    Returns
    -------
    numpy.ndarray
        The ``n x n`` result with its lower triangle holding ``alpha A^T A``
        (strict upper triangle is zero), as assembled on the root rank.
    """
    validate_matrix(a, "A")
    m, n = a.shape
    if processes < 1:
        raise ShapeError(f"processes must be >= 1, got {processes}")

    if tree is None:
        tree = build_task_tree(m, n, processes, mode="distributed")
    elif tree.mode != "distributed" or tree.m != m or tree.n != n or tree.processes != processes:
        raise ShapeError("supplied task tree does not match the problem "
                         f"(tree is {tree.mode} {tree.m}x{tree.n} for {tree.processes} ranks)")

    model = cache if cache is not None else default_cache_model(a.dtype)
    dtype = np.dtype(a.dtype)

    def program(comm: Communicator) -> Optional[np.ndarray]:
        a_local = a if comm.rank == tree.root.owner else None
        return _ata_d_program(comm, tree, a_local, alpha, model, use_strassen, dtype)

    start = time.perf_counter()
    results, stats = run_spmd(processes, program, timeout=timeout)
    wall = time.perf_counter() - start

    c = results[tree.root.owner]
    if c is None:  # pragma: no cover - defensive
        raise CommunicatorError("root rank produced no result")

    if return_stats:
        return c, DistributedRunStats(comm=stats, tree=tree, wall_time=wall,
                                      processes=processes)
    return c
