"""Analytic computational and communication costs of AtA-D (Props. 4.1, 4.2).

Proposition 4.1 (computation): with the load-balancing parameter α = 1/2,
the per-process computational cost of AtA-D on an ``n x n`` input with
``P`` processes is

    C(n, P) = O( (n / 2^{ℓ(P)})² · n / 2^{ℓ(P) - 1} )

i.e. the cost of the largest leaf-level A^T B product.

Proposition 4.2 (communication): along the critical path (the root process
``p0``),

    latency      L(n, P)  = O( 2 · [ 7 (ℓ(P) - 1) + 5 ] )
    bandwidth    BW(n, P) ≤ 6 (n/2)² + n (n + 2) / 2
                            + (7/6) n² (1 - 1/4^{ℓ(P) - 2})

expressed in transferred *words* (matrix elements).  These formulas are
evaluated here so the test-suite and the ablation benchmark can compare
them with the message/byte counters actually recorded by the simulated MPI
layer during an AtA-D run.
"""

from __future__ import annotations

from ..scheduler.levels import parallel_levels_distributed

__all__ = [
    "computation_cost",
    "latency_messages",
    "bandwidth_words",
    "distribution_bandwidth_words",
    "retrieval_bandwidth_words",
    "modeled_word_bytes",
]


def computation_cost(n: int, processes: int) -> float:
    """Prop. 4.1: classical-flop cost of the heaviest leaf, α = 1/2."""
    levels = parallel_levels_distributed(processes)
    leaf_n = n / (2.0 ** levels)
    leaf_m = n / (2.0 ** max(levels - 1, 0))
    return leaf_n * leaf_n * leaf_m


def latency_messages(n: int, processes: int) -> int:
    """Prop. 4.2 latency term: messages on the root's critical path,
    ``2 [7 (ℓ(P) - 1) + 5]`` (distribution plus retrieval)."""
    levels = parallel_levels_distributed(processes)
    return 2 * (7 * max(levels - 1, 0) + 5)


def distribution_bandwidth_words(n: int, processes: int) -> float:
    """Words sent by the root during the distribution phase:
    ``5 (n/2)² + (7/12) n² (1 - 1/4^{ℓ-2})`` (proof of Prop. 4.2)."""
    levels = parallel_levels_distributed(processes)
    geo = _geometric_tail(levels)
    return 5.0 * (n / 2.0) ** 2 + (7.0 / 12.0) * n * n * geo


def retrieval_bandwidth_words(n: int, processes: int) -> float:
    """Words received by the root during result retrieval:
    ``(n/2)² + n(n+2)/2 + (7/12) n² (1 - 1/4^{ℓ-2})``."""
    levels = parallel_levels_distributed(processes)
    geo = _geometric_tail(levels)
    return (n / 2.0) ** 2 + n * (n + 2.0) / 2.0 + (7.0 / 12.0) * n * n * geo


def bandwidth_words(n: int, processes: int) -> float:
    """Prop. 4.2 bandwidth bound: total words on the root's critical path,
    ``6 (n/2)² + n (n+2)/2 + (7/6) n² (1 - 1/4^{ℓ-2})``."""
    return distribution_bandwidth_words(n, processes) + retrieval_bandwidth_words(n, processes)


def _geometric_tail(levels: int) -> float:
    """``1 - 1/4^{ℓ - 2}`` clamped to be non-negative (it is zero or
    negative for ℓ <= 2, where the sum over levels 2..ℓ is empty)."""
    if levels <= 2:
        return 0.0
    return 1.0 - 1.0 / (4.0 ** (levels - 2))


def modeled_word_bytes(dtype_itemsize: int, words: float) -> float:
    """Convert a word count from the propositions into bytes for the α–β
    network model."""
    return float(words) * float(dtype_itemsize)
