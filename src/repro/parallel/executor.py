"""Execution backends for the shared-memory algorithm.

The paper's AtA-S runs its leaf tasks on OpenMP threads.  In this
reproduction three interchangeable backends are provided:

``SerialExecutor``
    Runs tasks one after another in the calling thread.  Deterministic,
    always available; the default for correctness tests.

``ThreadPoolExecutorBackend``
    Runs tasks on a :class:`concurrent.futures.ThreadPoolExecutor`.  The
    numpy kernels at the base of the recursion release the GIL while inside
    BLAS, so genuine overlap occurs for large matrices; for small ones the
    GIL serialises the Python-level recursion (this is the "GIL kills task
    parallelism" caveat documented in DESIGN.md).

``SimulatedCoreExecutor``
    Runs tasks serially but *accounts* their cost per simulated core: each
    task is charged to the worker that owns it and the backend reports the
    per-worker busy time (both measured wall-clock and counted flops).  The
    performance model uses these per-core timelines to produce the modeled
    parallel execution time of Fig. 5 — the critical-path (maximum) over
    workers — without needing 16 physical cores.

All backends consume ``(worker, callable)`` pairs and return a
:class:`ExecutionReport`.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Sequence, Tuple

from ..blas.counters import CounterSet, counting

__all__ = [
    "ExecutionReport",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "SimulatedCoreExecutor",
    "get_executor",
]

WorkItem = Tuple[int, Callable[[], None]]


@dataclasses.dataclass
class ExecutionReport:
    """What an executor observed while running a batch of tasks.

    Attributes
    ----------
    wall_time:
        Elapsed wall-clock seconds for the whole batch.
    per_worker_time:
        Seconds of task execution attributed to each worker.  For real
        thread pools this is measured inside each task; for the simulated
        backend it is the serial measurement attributed to the owning
        worker.
    per_worker_counters:
        Flop/byte counters attributed to each worker.
    critical_path_time:
        ``max(per_worker_time.values())`` — the modeled parallel makespan
        under perfect overlap (what a collision-free schedule achieves).
    """

    wall_time: float = 0.0
    per_worker_time: Dict[int, float] = dataclasses.field(default_factory=dict)
    per_worker_counters: Dict[int, CounterSet] = dataclasses.field(default_factory=dict)
    tasks_run: int = 0

    @property
    def critical_path_time(self) -> float:
        if not self.per_worker_time:
            return 0.0
        return max(self.per_worker_time.values())

    @property
    def total_busy_time(self) -> float:
        return sum(self.per_worker_time.values())

    def worker_flops(self, worker: int) -> int:
        counters = self.per_worker_counters.get(worker)
        return counters.total_flops if counters is not None else 0

    @property
    def total_flops(self) -> int:
        return sum(c.total_flops for c in self.per_worker_counters.values())


class _BaseExecutor:
    def _run_one(self, worker: int, fn: Callable[[], None], report: ExecutionReport) -> None:
        counters = report.per_worker_counters.setdefault(worker, CounterSet())
        start = time.perf_counter()
        with counting(counters):
            fn()
        elapsed = time.perf_counter() - start
        report.per_worker_time[worker] = report.per_worker_time.get(worker, 0.0) + elapsed
        report.tasks_run += 1


class SerialExecutor(_BaseExecutor):
    """Run every task in the calling thread, in submission order."""

    def run(self, items: Sequence[WorkItem]) -> ExecutionReport:
        report = ExecutionReport()
        start = time.perf_counter()
        for worker, fn in items:
            self._run_one(worker, fn, report)
        report.wall_time = time.perf_counter() - start
        return report


class SimulatedCoreExecutor(SerialExecutor):
    """Identical execution to :class:`SerialExecutor`; the distinction is
    semantic — callers use it when they intend to read the per-worker
    timelines as simulated cores rather than real ones."""


class ThreadPoolExecutorBackend(_BaseExecutor):
    """Run tasks on a thread pool with ``max_workers`` threads.

    Tasks owned by the same worker index are serialised with respect to
    each other (they are submitted as one chained job), preserving the
    paper's model where each thread executes its own task list.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def run(self, items: Sequence[WorkItem]) -> ExecutionReport:
        report = ExecutionReport()
        by_worker: Dict[int, List[Callable[[], None]]] = {}
        for worker, fn in items:
            by_worker.setdefault(worker, []).append(fn)

        def run_worker(worker: int, fns: List[Callable[[], None]]) -> None:
            for fn in fns:
                self._run_one(worker, fn, report)

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(run_worker, worker, fns)
                       for worker, fns in by_worker.items()]
            for fut in futures:
                fut.result()
        report.wall_time = time.perf_counter() - start
        return report


def get_executor(name: str, workers: int = 1):
    """Factory: ``"serial"``, ``"threads"`` or ``"simulated"``."""
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadPoolExecutorBackend(max_workers=workers)
    if name == "simulated":
        return SimulatedCoreExecutor()
    raise ValueError(f"unknown executor {name!r}; expected 'serial', 'threads' or 'simulated'")
