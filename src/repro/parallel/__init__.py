"""Shared-memory parallel substrate and the AtA-S algorithm (Section 4.2)."""

from .ata_shared import ata_shared, make_task_callable
from .executor import (
    ExecutionReport,
    SerialExecutor,
    SimulatedCoreExecutor,
    ThreadPoolExecutorBackend,
    get_executor,
)

__all__ = [
    "ata_shared",
    "make_task_callable",
    "ExecutionReport",
    "SerialExecutor",
    "SimulatedCoreExecutor",
    "ThreadPoolExecutorBackend",
    "get_executor",
]
