"""AtA-S — the shared-memory parallel algorithm (Algorithm 3, Section 4.2).

The algorithm has two phases:

1. *Task assignment*: every thread conceptually simulates the recursion of
   ``AtANaive`` and derives the task tree ``T``; here the tree is built
   once by :func:`repro.scheduler.build_task_tree` (the result is identical
   for every thread, so building it once is equivalent and cheaper).
   Leaves carry the computation type and the sub-matrix offsets; inner
   nodes are ignored because no communication is needed in shared memory.

2. *Execution*: each thread runs the task(s) it owns — ``AtA`` for
   A^T A-type leaves, ``FastStrassen`` for A^T B-type leaves — on views of
   the shared input/output arrays.  Because the shared-memory tree tiles
   ``C`` into disjoint blocks (Fig. 2), threads never write to overlapping
   memory and no synchronisation is required until the final join.

The function returns the lower-triangular product like the sequential
:func:`repro.core.ata.ata`, plus (optionally) an
:class:`~repro.parallel.executor.ExecutionReport` describing per-worker
work, which the benchmark harness feeds to the performance model to obtain
the modeled multi-core times of Fig. 5.
"""

from __future__ import annotations

from typing import Literal, Optional, Tuple, Union

import numpy as np

from ..blas.kernels import scale, validate_matrix
from ..cache.model import CacheModel, default_cache_model
from ..engine import default_engine
from ..errors import ShapeError
from ..scheduler.task import ComputationType, Task
from ..scheduler.tree import TaskTree, build_task_tree
from .executor import ExecutionReport, get_executor

__all__ = ["ata_shared", "make_task_callable"]


def make_task_callable(task: Task, a: np.ndarray, c: np.ndarray, alpha: float,
                       cache: Optional[CacheModel], *,
                       use_strassen: bool = True):
    """Wrap a scheduler :class:`Task` into a zero-argument callable that
    performs the task on views of ``a`` and ``c``.

    Exposed separately so the distributed algorithm and the examples can
    reuse the same task-to-computation mapping.

    Leaves execute through the process-wide execution engine: many leaves
    of one tree (and of every later call on the same problem shape) share
    identical sub-matrix shapes, so their recursion plans are compiled once
    and their Strassen workspaces come from the pool instead of being
    re-allocated per leaf.  The engine is thread-safe — each concurrent
    leaf checks out its own workspace — and its results are bit-identical
    to the direct ``ata``/``fast_strassen`` calls it replaced.
    """
    model = cache if cache is not None else default_cache_model(a.dtype)
    engine = default_engine()

    if task.kind is ComputationType.ATA:
        a_view = task.a.view(a)
        c_view = task.c.view(c)

        def run_ata() -> None:
            engine.matmul_ata(a_view, c_view, alpha, cache=model)

        return run_ata

    a_view = task.a.view(a)
    b_view = task.b.view(a)  # type: ignore[union-attr]  # B is a block of A
    c_view = task.c.view(c)

    def run_atb() -> None:
        engine.matmul_atb(a_view, b_view, c_view, alpha,
                          algo="strassen" if use_strassen else "recursive_gemm",
                          cache=model)

    return run_atb


def ata_shared(a: np.ndarray, c: Optional[np.ndarray] = None, alpha: float = 1.0, *,
               threads: int = 4,
               beta: float = 1.0,
               executor: Literal["serial", "threads", "simulated"] = "threads",
               cache: Optional[CacheModel] = None,
               tree: Optional[TaskTree] = None,
               use_strassen: bool = True,
               return_report: bool = False,
               ) -> Union[np.ndarray, Tuple[np.ndarray, ExecutionReport, TaskTree]]:
    """Lower-triangular ``C = alpha * A^T A + beta * C`` computed by AtA-S.

    Parameters
    ----------
    a:
        Input matrix of shape ``(m, n)``.
    c:
        Output ``(n, n)`` matrix; allocated when omitted.  Only the lower
        triangle is meaningful on return.
    alpha, beta:
        The usual BLAS-style scaling factors.
    threads:
        Number of workers ``P``; the task tree is built for this count.
    executor:
        ``"threads"`` (default) runs leaves on a thread pool of ``threads``
        workers, ``"serial"`` runs them in order in the calling thread,
        ``"simulated"`` runs serially but attributes cost to simulated
        cores (used by the benchmark harness on machines with fewer
        physical cores than the paper's nodes).
    cache:
        Ideal cache model for the base cases of the per-leaf recursions.
    tree:
        A pre-built task tree to reuse (must match ``a``'s shape and
        ``threads``); built on the fly when omitted.
    use_strassen:
        When False, A^T B leaves use RecursiveGEMM instead of FastStrassen
        (the AtANaive variant; used in ablation benchmarks).
    return_report:
        When True, return ``(c, report, tree)`` instead of just ``c``.

    Notes
    -----
    The result is numerically identical to the sequential
    :func:`repro.core.ata.ata` up to floating point reassociation, because
    the leaf tasks partition exactly the same set of block products.
    """
    validate_matrix(a, "A")
    m, n = a.shape
    if c is None:
        c = np.zeros((n, n), dtype=a.dtype)
    validate_matrix(c, "C")
    if c.shape != (n, n):
        raise ShapeError(f"C must have shape ({n}, {n}), got {c.shape}")
    if threads < 1:
        raise ShapeError(f"threads must be >= 1, got {threads}")

    scale(c, beta)

    if tree is None:
        tree = build_task_tree(m, n, threads, mode="shared")
    elif tree.mode != "shared" or tree.m != m or tree.n != n or tree.processes != threads:
        raise ShapeError("supplied task tree does not match the problem "
                         f"(tree is {tree.mode} {tree.m}x{tree.n} for {tree.processes} workers)")

    model = cache if cache is not None else default_cache_model(a.dtype)
    items = [(task.owner, make_task_callable(task, a, c, alpha, model,
                                             use_strassen=use_strassen))
             for task in tree.tasks()]

    backend = get_executor(executor, workers=threads)
    report = backend.run(items)

    if return_report:
        return c, report, tree
    return c
