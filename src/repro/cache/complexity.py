"""Analytic cache-complexity formulas (Proposition 3.1).

The paper proves that AtA has the same ideal-cache complexity as Strassen:

.. math::

    C_S(n; M, b) = \\Theta\\!\\left(1 + \\frac{n^2}{b}
                   + \\frac{n^{\\log_2 7}}{b \\sqrt{M}}\\right)

(Frigo et al., "Cache-oblivious algorithms", FOCS'99), and that

.. math::

    C_S(n/2; M, b) \\;\\le\\; C_{AtA}(n; M, b) \\;\\le\\; C_S(n; M, b).

This module evaluates those bounds, the classical-multiplication analogue,
and the exact recurrences — both as closed-ish forms and as explicit
recursions that mirror the inductive proof, which the test suite checks
against each other.
"""

from __future__ import annotations

import functools
import math

from .model import CacheModel

__all__ = [
    "LOG2_7",
    "strassen_cache_bound",
    "classical_cache_bound",
    "ata_cache_bounds",
    "strassen_cache_recurrence",
    "ata_cache_recurrence",
]

#: The Strassen exponent, log2(7) ≈ 2.807.
LOG2_7 = math.log2(7.0)


def strassen_cache_bound(n: int, model: CacheModel) -> float:
    """Evaluate Θ(1 + n²/b + n^{log2 7} / (b √M)) for Strassen (up to the
    hidden constant, taken as 1)."""
    m, b = model.capacity_words, model.line_words
    return 1.0 + n * n / b + n ** LOG2_7 / (b * math.sqrt(m))


def classical_cache_bound(n: int, model: CacheModel) -> float:
    """Cache complexity of the classical blocked multiplication,
    Θ(1 + n²/b + n³ / (b √M))."""
    m, b = model.capacity_words, model.line_words
    return 1.0 + n * n / b + n ** 3 / (b * math.sqrt(m))


def ata_cache_bounds(n: int, model: CacheModel) -> tuple[float, float]:
    """Lower/upper sandwich for AtA from Prop. 3.1:
    ``C_S(n/2) <= C_AtA(n) <= C_S(n)``."""
    return strassen_cache_bound(max(1, n // 2), model), strassen_cache_bound(n, model)


@functools.lru_cache(maxsize=None)
def _strassen_rec(n: int, capacity: int, line: int) -> int:
    """Exact miss-count recurrence for Strassen on an n×n problem.

    Base case: once the working set (three n×n operands) fits in cache the
    misses are the cold misses of streaming it in: 3 n²/b.
    Recursive case: 7 recursive sub-products plus 18 additions scanning
    (n/2)² blocks three times each.
    """
    if 3 * n * n <= capacity or n <= 1:
        return -(-3 * n * n // line)
    half = -(-n // 2)
    adds = 18 * (-(-3 * half * half // line))
    return 7 * _strassen_rec(half, capacity, line) + adds


def strassen_cache_recurrence(n: int, model: CacheModel) -> int:
    """Exact-count version of the Strassen cache recurrence."""
    return _strassen_rec(int(n), model.capacity_words, model.line_words)


@functools.lru_cache(maxsize=None)
def _ata_rec(n: int, capacity: int, line: int) -> int:
    """Exact miss-count recurrence for AtA (Eq. of Prop. 3.1 proof):
    ``C_AtA(n) = 4 C_AtA(n/2) + 2 C_S(n/2) + sums``."""
    if n * n <= capacity or n <= 1:
        return -(-n * n // line)
    half = -(-n // 2)
    sums = 3 * (-(-half * half // line))
    return 4 * _ata_rec(half, capacity, line) + 2 * _strassen_rec(half, capacity, line) + sums


def ata_cache_recurrence(n: int, model: CacheModel) -> int:
    """Exact-count version of the AtA cache recurrence."""
    return _ata_rec(int(n), model.capacity_words, model.line_words)
