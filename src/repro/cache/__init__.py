"""Ideal-cache model and cache-complexity analysis (Section 3.4)."""

from .model import (
    CacheHierarchy,
    CacheLevel,
    CacheModel,
    XEON_E5_2630V3_HIERARCHY,
    default_cache_model,
)
from .complexity import (
    LOG2_7,
    ata_cache_bounds,
    ata_cache_recurrence,
    classical_cache_bound,
    strassen_cache_bound,
    strassen_cache_recurrence,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheModel",
    "XEON_E5_2630V3_HIERARCHY",
    "default_cache_model",
    "LOG2_7",
    "ata_cache_bounds",
    "ata_cache_recurrence",
    "classical_cache_bound",
    "strassen_cache_bound",
    "strassen_cache_recurrence",
]
