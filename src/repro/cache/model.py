"""Ideal-cache model.

Section 3.4 of the paper analyses AtA under the *ideal cache model*: a
fully-associative cache of :math:`M` words with lines of :math:`b` words
and an optimal replacement policy.  This module provides

* :class:`CacheModel` — the ``(M, b)`` pair plus helpers used by the
  cache-oblivious base-case predicates of Algorithm 1 / Algorithm 2, and
* :class:`CacheHierarchy` — a small description of a real machine's cache
  levels, used by the performance model to translate counted memory traffic
  into modeled time and by :func:`default_cache_model` to pick a realistic
  default base case.

The *algorithms* only consume the predicates (:meth:`CacheModel.fits_ata`,
:meth:`CacheModel.fits_gemm`); everything else exists for analysis and for
the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..config import get_config
from ..errors import ConfigurationError

__all__ = ["CacheModel", "CacheLevel", "CacheHierarchy", "default_cache_model",
           "XEON_E5_2630V3_HIERARCHY"]


@dataclasses.dataclass(frozen=True)
class CacheModel:
    """An ideal cache of ``capacity_words`` words with ``line_words`` lines.

    The unit is *matrix elements* (words), not bytes, so the same model is
    valid for single and double precision runs — exactly as in the paper,
    whose base case compares element counts against "the cache size".
    """

    capacity_words: int
    line_words: int = 8

    def __post_init__(self) -> None:
        if self.capacity_words < 1:
            raise ConfigurationError(f"cache capacity must be positive, got {self.capacity_words}")
        if self.line_words < 1:
            raise ConfigurationError(f"cache line must be positive, got {self.line_words}")
        if self.line_words > self.capacity_words:
            raise ConfigurationError(
                f"cache line ({self.line_words}) cannot exceed capacity ({self.capacity_words})"
            )

    # -- base-case predicates (Algorithm 1 line 2, Algorithm 2 line 2) ----
    def fits_ata(self, m: int, n: int) -> bool:
        """Base case of AtA: the ``m x n`` operand fits in cache."""
        return m * n <= self.capacity_words

    def fits_gemm(self, m: int, n: int, k: int) -> bool:
        """Base case of RecursiveGEMM / Strassen: both operands fit."""
        return m * n + m * k <= self.capacity_words

    # -- analysis helpers --------------------------------------------------
    def lines_for(self, elements: int) -> int:
        """Number of cache lines needed to hold ``elements`` words."""
        return -(-elements // self.line_words)

    def scan_misses(self, elements: int) -> int:
        """Cold misses of a streaming scan over ``elements`` words."""
        return self.lines_for(elements)

    def with_capacity(self, capacity_words: int) -> "CacheModel":
        return dataclasses.replace(self, capacity_words=capacity_words)


@dataclasses.dataclass(frozen=True)
class CacheLevel:
    """One physical cache level (size in bytes, line size in bytes)."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    latency_cycles: float = 4.0
    shared: bool = False

    def words(self, itemsize: int = 8) -> int:
        """Capacity expressed in elements of ``itemsize`` bytes."""
        return self.size_bytes // itemsize


@dataclasses.dataclass(frozen=True)
class CacheHierarchy:
    """An ordered list of cache levels, smallest/fastest first."""

    levels: Sequence[CacheLevel]

    def __post_init__(self) -> None:
        sizes = [lvl.size_bytes for lvl in self.levels]
        if sizes != sorted(sizes):
            raise ConfigurationError("cache levels must be ordered smallest to largest")

    def level(self, name: str) -> CacheLevel:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(name)

    @property
    def last_level(self) -> CacheLevel:
        return self.levels[-1]

    @property
    def first_level(self) -> CacheLevel:
        return self.levels[0]

    def ideal_model(self, *, level: str | None = None, itemsize: int = 8) -> CacheModel:
        """Collapse the hierarchy into a single ideal :class:`CacheModel`.

        By default the *first* (L1) level is used, mirroring the paper's
        choice of a base case small enough to live in the innermost cache.
        """
        lvl = self.level(level) if level is not None else self.first_level
        return CacheModel(capacity_words=max(1, lvl.words(itemsize)),
                          line_words=max(1, lvl.line_bytes // itemsize))

    def names(self) -> List[str]:
        return [lvl.name for lvl in self.levels]


#: Cache hierarchy of the paper's compute nodes (Intel Xeon E5-2630 v3,
#: Haswell-EP): 32 KiB L1D and 256 KiB L2 per core, 20 MiB shared L3.
XEON_E5_2630V3_HIERARCHY = CacheHierarchy(levels=(
    CacheLevel("L1", 32 * 1024, 64, latency_cycles=4.0),
    CacheLevel("L2", 256 * 1024, 64, latency_cycles=12.0),
    CacheLevel("L3", 20 * 1024 * 1024, 64, latency_cycles=38.0, shared=True),
))


def default_cache_model(dtype=None) -> CacheModel:
    """Cache model implied by the active configuration.

    The configured ``base_case_elements`` is interpreted as the ideal-cache
    capacity in words; the line size is taken from the Xeon hierarchy (64
    bytes) for the given dtype.
    """
    cfg = get_config()
    itemsize = np.dtype(dtype if dtype is not None else cfg.default_dtype).itemsize
    return CacheModel(capacity_words=cfg.base_case_elements,
                      line_words=max(1, 64 // itemsize))
