#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a checked-in baseline.

Used by the CI ``benchmarks`` job: the job runs the benchmark suite with
``--benchmark-json=bench-results.json``, uploads the JSON as an artifact,
and then fails if any benchmark's median regressed more than the tolerance
against the committed baseline (``BENCH_engine.json``).

Usage::

    python scripts/compare_bench.py --baseline BENCH_engine.json \
        --current bench-results.json [--tolerance 0.20]

Benchmarks present only in the current run are reported as NEW and never
fail (new benchmark groups land before their baseline is refreshed).
Benchmarks present only in the *baseline* mean coverage disappeared and
fail the comparison unless ``--allow-missing`` is passed.  CI passes the
flag because its benchmark step is advisory (``continue-on-error``:
timing assertions flake on shared runners), so a partially recorded JSON
is expected there; run strict locally and when refreshing baselines.
``--group NAME`` (repeatable) restricts the comparison to benchmarks
carrying that pytest-benchmark group (``@pytest.mark.benchmark(group=...)``;
ungrouped benchmarks match the pseudo-group ``default``).

A baseline file that does not exist at all exits with the distinct code
:data:`MISSING_BASELINE_EXIT` (2) so callers can tell "no baseline yet"
from "regression found" (1); produce one with the ``baseline-refresh``
workflow (Actions → baseline-refresh → Run workflow, or the weekly cron)
and commit the uploaded artifact, or record locally with::

    PYTHONPATH=src python -m pytest benchmarks \
        --benchmark-json=BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Exit code when the baseline JSON file is absent (distinct from the
#: regression exit code 1).
MISSING_BASELINE_EXIT = 2

#: Pseudo-group matched by benchmarks that carry no explicit group.
DEFAULT_GROUP = "default"


def load_run(path: str, groups=None) -> tuple:
    """Return ``(medians_by_name, core_count)`` for one benchmark JSON.

    Core count is the machine-class key: gating on exact CPU model would
    never arm on a hosted-runner fleet that mixes models run to run, while
    the parallel benchmarks are primarily sensitive to how many cores the
    runner exposes (the 20% tolerance absorbs same-class model variance).

    ``groups`` (a set of group names, or ``None`` for all) filters to
    benchmarks whose pytest-benchmark group is in the set; benchmarks
    without a group match :data:`DEFAULT_GROUP`.
    """
    with open(path) as handle:
        payload = json.load(handle)
    medians = {bench["name"]: bench["stats"]["median"]
               for bench in payload.get("benchmarks", [])
               if groups is None
               or (bench.get("group") or DEFAULT_GROUP) in groups}
    return medians, payload.get("machine_info", {}).get("cpu", {}).get("count")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (e.g. BENCH_engine.json)")
    parser.add_argument("--current", required=True,
                        help="freshly produced --benchmark-json output")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline benchmark is "
                             "missing from the current run (disappearing "
                             "coverage fails by default)")
    parser.add_argument("--ignore-machine", action="store_true",
                        help="gate even when the baseline was recorded on "
                             "different hardware (absolute wall-clock medians "
                             "are only comparable on the same machine class)")
    parser.add_argument("--group", action="append", dest="groups",
                        metavar="NAME",
                        help="compare only benchmarks in this pytest-benchmark "
                             "group (repeatable; ungrouped benchmarks match "
                             f"'{DEFAULT_GROUP}'; default: all groups)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"baseline {args.baseline!r} does not exist — no regression "
              "gate is armed.  Produce one with the baseline-refresh "
              "workflow (Actions -> baseline-refresh -> Run workflow, or "
              "wait for the weekly cron), download its candidate artifact "
              "and commit it as the baseline.")
        return MISSING_BASELINE_EXIT
    groups = set(args.groups) if args.groups else None
    baseline, base_cores = load_run(args.baseline, groups)
    current, cur_cores = load_run(args.current, groups)
    if groups:
        print("comparing group(s): " + ", ".join(sorted(groups)))
    if not current:
        # an empty run means the suite failed before recording anything —
        # that must not read as "no regressions"
        print("no benchmarks in the current run"
              + (" (baseline has some: failing)" if baseline else ""))
        return 1 if baseline else 0
    if base_cores != cur_cores and not args.ignore_machine:
        print(f"baseline has {base_cores} core(s), current run has "
              f"{cur_cores}; wall-clock medians are not comparable across "
              "machine classes — reporting without gating (refresh the "
              "baseline on this machine class, or pass --ignore-machine "
              "to gate anyway)")
        for name in sorted(set(baseline) | set(current)):
            base, now = baseline.get(name), current.get(name)
            if base is not None and now is not None:
                print(f"INFO     {name}: baseline {base * 1e3:.3f}ms -> "
                      f"current {now * 1e3:.3f}ms ({now / base:.2f}x)")
            else:
                print(f"INFO     {name}: "
                      + ("no baseline" if base is None else "baseline only"))
        return 0

    failures = []
    missing = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        now = current.get(name)
        if base is None:
            print(f"NEW      {name}: {now * 1e3:.3f}ms (no baseline)")
            continue
        if now is None:
            missing.append(name)
            print(f"MISSING  {name}: present in baseline only"
                  + ("" if args.allow_missing else " (failing; pass "
                     "--allow-missing to tolerate)"))
            continue
        ratio = now / base if base else float("inf")
        status = "OK"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSED"
            failures.append((name, ratio))
        print(f"{status:<9}{name}: baseline {base * 1e3:.3f}ms -> "
              f"current {now * 1e3:.3f}ms ({ratio:.2f}x)")

    if failures:
        worst = max(ratio for _, ratio in failures)
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%} (worst {worst:.2f}x)")
        return 1
    if missing and not args.allow_missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the "
              "current run; pass --allow-missing if this is expected")
        return 1
    print(f"\nall benchmarks within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
